//===- NativeEngine.h - In-process native execution tier --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth execution tier (docs/EXECUTION_TIERS.md is the full
/// matrix): emitted C compiled in-process into a shared object via the
/// blessed `support/Subprocess` cc recipe, dlopened, and called through
/// the fixed mcrt ABI -- no per-run process spawn, and on a cache hit no
/// cc invocation at all. Fronted by a content-addressed ArtifactCache
/// keyed on printed IR + storage plans + emitter options + the mcrt ABI
/// stamp + a digest of the mcrt runtime source (so a behavioral runtime
/// fix that keeps the ABI shape still retires every cached artifact).
///
/// **Degradation.** The native tier is a rung *above* the static VM on
/// the execution side of the ladder: anything that prevents a native run
/// -- no C toolchain, cc failure, dlopen/validation failure (corrupted
/// artifact), a compile that degraded below IdentityPlans, or a runtime
/// mcrt trap (bounds, shape, error(), complex data) -- falls back to
/// `CompiledProgram::runStatic` loudly: a `Degraded` remark on the
/// program's observer names the cause, mirroring PR 1's ladder
/// discipline. Output therefore never silently diverges: the fallback
/// *is* the tier the native output is byte-compared against.
///
/// **Safety.** Generated code calls `mcrt_fail` on any runtime error;
/// in-process that would exit() the host (fatal for matcoald). The engine
/// installs an `mcrt_set_fail_handler` trampoline that longjmps back to
/// the call site, classifies the trap, and re-runs the program on the VM
/// for an authoritative result with "line N (op)" provenance. Program
/// output is captured through `mcrt_set_out` into an open_memstream --
/// the host's own stdout (matcoald's protocol stream) is never touched.
///
/// **Concurrency.** The cache index is mutex-guarded and shared across
/// requests and workers (matcoald holds one engine). Actual native
/// executions serialize behind a process-wide run mutex: the dlopened
/// runtime's globals (PRNG, growth stats, output sink, fail handler) are
/// per-artifact but not thread-safe, and the per-run reseeding contract
/// (`mcrt_srand(seed)` before every entry call) keeps cached artifacts
/// deterministic run to run.
///
/// **Cancellation & metering.** The run's CancelToken is bridged into
/// the artifact through `mcrt_set_cancel_check`: mcrt_cancel_point polls
/// it at chunk boundaries inside long fused/parallel loops, and expiry
/// faults through the fail trampoline, re-running on the VM for the
/// classified TrapKind::Deadline (the token is also checked before entry
/// and after acquiring the run mutex, so an already-late request never
/// starts). The engine resets and reads mcrt's per-run heap meter,
/// growth stats, and thread stats, filling ExecResult::Mem.PeakHeapBytes,
/// HeapResizes, ThreadsSpawned, and ThreadChunks; `mcrt_set_threads`
/// carries the program's resolved `--threads` count into the worker
/// pool.
///
/// **Limits** (documented in the tier matrix): time-weighted memory
/// averages stay zero (they need the VM's virtual op-clock) and Ops = 0.
/// Executions serialize on the run mutex, so one long native run
/// head-of-line blocks the native tier for every matcoald worker -- set
/// request deadlines; a request that expires in the queue falls back to
/// the VM instead of starting late, and one that expires mid-run unwinds
/// at the next chunk boundary.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_NATIVE_NATIVEENGINE_H
#define MATCOAL_NATIVE_NATIVEENGINE_H

#include "driver/Compiler.h"
#include "native/ArtifactCache.h"

#include <cstdint>
#include <string>

namespace matcoal {

class NativeEngine {
public:
  /// \p CacheDir empty selects $MATCOAL_CACHE_DIR, then a per-user
  /// default (see ArtifactCache.h); \p McrtDir empty selects
  /// $MATCOAL_MCRT_DIR then the baked-in source location of
  /// src/codegen/mcrt.
  explicit NativeEngine(std::string CacheDir = "", std::string McrtDir = "");

  /// The process-wide engine (one shared artifact cache). matcoalc and
  /// the benches use this; matcoald constructs one per service so tests
  /// can isolate cache directories.
  static NativeEngine &shared();

  /// Runs \p P natively, or falls back to P.runStatic(Seed) with a
  /// `Degraded` remark naming the cause. Counts native.cache.{hits,
  /// misses} and native.compile_seconds (whole seconds, rounded up per cc
  /// invocation so even a fast compile is visible) into P.Obs. When
  /// P.Prof is set the artifact is built with mcrt_prof_* hooks (a
  /// distinct cache key -- emitter options are part of the address) and
  /// the streamed events are replayed into the profiler.
  ExecResult run(const CompiledProgram &P, std::uint64_t Seed = 20030609);

  /// Static eligibility: compiled at Full/IdentityPlans with plans and
  /// types intact. Possibly-complex types do not disqualify (inference
  /// widens conservatively; actually-complex data trips mcrt's runtime
  /// clear-fault and re-runs on the VM). Does NOT probe for a C compiler
  /// -- a cache hit needs none.
  static bool eligible(const CompiledProgram &P, std::string *WhyNot = nullptr);

  /// The canonical cache key for \p P under this engine's options --
  /// exposed so tests can assert invalidation behavior.
  std::string cacheKeyFor(const CompiledProgram &P, bool Profile,
                          bool NoFuse) const;

  ArtifactCache &cache() { return Cache; }
  const std::string &mcrtDir() const { return McrtDir; }

private:
  std::string preimageFor(const CompiledProgram &P, bool Profile,
                          bool NoFuse) const;
  /// The loud fallback: remark + runStatic.
  ExecResult fallback(const CompiledProgram &P, std::uint64_t Seed,
                      const std::string &Why) const;

  ArtifactCache Cache;
  std::string McrtDir;
  /// Content address of McrtDir's mcrt.c + mcrt.h, mixed into every
  /// cache preimage (computed once at construction).
  std::string McrtSrcDigest;
  const char *OptFlag = "-O2";
};

} // namespace matcoal

#endif // MATCOAL_NATIVE_NATIVEENGINE_H
