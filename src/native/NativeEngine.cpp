//===- NativeEngine.cpp ---------------------------------------------------===//

#include "native/NativeEngine.h"

#include "codegen/CEmitter.h"
#include "codegen/mcrt/mcrt.h"
#include "observe/RuntimeProfiler.h"
#include "support/Subprocess.h"

#include <chrono>
#include <cmath>
#include <csetjmp>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include <unistd.h>

#ifndef MATCOAL_MCRT_DIR
#define MATCOAL_MCRT_DIR "src/codegen/mcrt"
#endif

using namespace matcoal;

namespace {

/// Serializes every native execution in the process: the dlopened
/// runtime's globals (output sink, fail handler, PRNG) are per-artifact
/// but single-threaded, and the longjmp trampoline below is global.
std::mutex &runMutex() {
  static std::mutex Mu;
  return Mu;
}

std::jmp_buf g_trap_jmp;
std::string g_trap_msg;

extern "C" void matcoalNativeFailHandler(const char *Msg) {
  // Not a signal handler: mcrt_fail calls this synchronously, so a
  // string assignment and a longjmp over plain C frames are safe.
  g_trap_msg = Msg ? Msg : "";
  std::longjmp(g_trap_jmp, 1);
}

/// The cancellation bridge mcrt polls at chunk boundaries inside long
/// fused/parallel loops (mcrt_cancel_point; main thread only, so the
/// fail handler's longjmp stays safe). \p Host is the run's CancelToken.
extern "C" int matcoalNativeCancelCheck(void *Host) {
  return static_cast<const CancelToken *>(Host)->expired() ? 1 : 0;
}

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

NativeEngine::NativeEngine(std::string CacheDir, std::string McrtDir)
    : Cache(std::move(CacheDir)) {
  if (McrtDir.empty()) {
    if (const char *Env = std::getenv("MATCOAL_MCRT_DIR"))
      McrtDir = Env;
    if (McrtDir.empty())
      McrtDir = MATCOAL_MCRT_DIR;
  }
  this->McrtDir = std::move(McrtDir);
  // Digest of the runtime source every artifact is compiled against:
  // MCRT_ABI_VERSION only tracks the ABI *shape*, so a behavioral mcrt
  // fix that keeps the shape (print formatting, RNG) must invalidate
  // through this line or cached artifacts silently diverge from the VM
  // they are byte-compared against.
  McrtSrcDigest = ArtifactCache::contentAddress(
      readWholeFile(this->McrtDir + "/mcrt.c") + "\x1f" +
      readWholeFile(this->McrtDir + "/mcrt.h"));
}

NativeEngine &NativeEngine::shared() {
  static NativeEngine E;
  return E;
}

bool NativeEngine::eligible(const CompiledProgram &P, std::string *WhyNot) {
  auto No = [&](const char *Why) {
    if (WhyNot)
      *WhyNot = Why;
    return false;
  };
  if (P.Level != DegradeLevel::Full &&
      P.Level != DegradeLevel::IdentityPlans)
    return No("compile degraded below the planned static model");
  if (!P.M || !P.TI)
    return No("no typed module to emit");
  // Possibly-complex types are NOT rejected here: inference widens `.^`
  // and friends to complex even when every runtime value stays real
  // (nb1d/nb3d), and the emitted C handles those fine. A program whose
  // data actually goes complex trips mcrt's clear-fault path at run time
  // and re-runs on the VM, which models complex natively.
  if (P.GCTDPlans.size() != P.M->Functions.size())
    return No("missing storage plans");
  return true;
}

std::string NativeEngine::preimageFor(const CompiledProgram &P, bool Profile,
                                      bool NoFuse) const {
  // Printed canonical forms only -- never interned ids (SymExpr.h's
  // contract): this text is stable across SymExprContexts, requests,
  // and daemon restarts, which is what makes the on-disk cache shareable.
  std::ostringstream Pre;
  Pre << "mcrt-abi: " << MCRT_ABI_VERSION << "\n"
      << "mcrt-src: " << McrtSrcDigest << "\n"
      << "opt: " << OptFlag << "\n"
      << "fuse: " << (NoFuse ? 0 : 1) << "\n"
      << "profile: " << (Profile ? 1 : 0) << "\n"
      << "entry: " << P.Entry << "\n"
      << "ir:\n"
      << P.M->str() << "plans:\n";
  for (const auto &F : P.M->Functions)
    Pre << P.GCTDPlans.at(F.get()).str(*F);
  return Pre.str();
}

std::string NativeEngine::cacheKeyFor(const CompiledProgram &P, bool Profile,
                                      bool NoFuse) const {
  return ArtifactCache::contentAddress(preimageFor(P, Profile, NoFuse));
}

ExecResult NativeEngine::fallback(const CompiledProgram &P,
                                  std::uint64_t Seed,
                                  const std::string &Why) const {
  remarkTo(P.Obs, "native", RemarkKind::Degraded, P.Entry,
           "native tier unavailable (" + Why + "): running on the VM",
           {{"tier", execTierName(ExecTier::StaticVM)}});
  return P.runStatic(Seed);
}

ExecResult NativeEngine::run(const CompiledProgram &P, std::uint64_t Seed) {
  std::string WhyNot;
  if (!eligible(P, &WhyNot))
    return fallback(P, Seed, WhyNot);
  // An already-expired deadline goes straight to the VM, whose op loop
  // polls the token and classifies TrapKind::Deadline with provenance;
  // native code cannot be interrupted mid-run.
  if (P.Cancel && P.Cancel->expired())
    return fallback(P, Seed, "deadline expired before native entry");

  const bool Profile = P.Prof != nullptr;
  const std::string Preimage = preimageFor(P, Profile, P.NoFuse);
  const std::string Key = ArtifactCache::contentAddress(Preimage);

  CacheOutcome Outcome;
  std::string Err;
  std::shared_ptr<NativeArtifact> Art;
  {
    // Timed as "native.cache" so the service's span tree shows the
    // lookup next to any cc compile that follows it.
    PassTimer LookupT(P.Obs, "native.cache");
    Art = Cache.lookup(Key, Outcome, Err);
  }
  if (Outcome == CacheOutcome::Corrupt) {
    // The artifact existed but failed validation (truncated file, stale
    // ABI stamp): it was evicted; this run degrades loudly and the next
    // one recompiles from source.
    count(P.Obs, "native.cache.misses");
    return fallback(P, Seed, "corrupted artifact rejected: " + Err);
  }
  if (Art) {
    count(P.Obs, "native.cache.hits");
  } else {
    count(P.Obs, "native.cache.misses");
    if (!ccAvailable())
      return fallback(P, Seed, "no system C compiler (cc) on PATH");
    CEmitOptions EOpts;
    EOpts.Fuse = !P.NoFuse;
    EOpts.Profile = Profile;
    std::string C = emitModuleC(P.module(), P.GCTDPlans, P.types(),
                                P.ranges(), nullptr, EOpts, P.legality());
    // The in-process entry: the TU's main() is for the standalone
    // external-cc path; the engine calls this wrapper via dlsym instead.
    C += "\nvoid matcoal_native_entry(void) { mat_" + P.Entry +
         "(); }\n";
    double CompileSeconds = 0;
    {
      PassTimer CcT(P.Obs, "native.cc");
      Art = Cache.insert(Key, C, Preimage, McrtDir, OptFlag, Err,
                         CompileSeconds);
    }
    // Whole seconds rounded up per cc invocation: a warm cache shows an
    // exact 0 while even a 100ms compile stays visible in the counter.
    count(P.Obs, "native.compile_seconds",
          static_cast<std::int64_t>(std::ceil(CompileSeconds)));
    if (!Art)
      return fallback(P, Seed, Err);
  }

  // --- The actual in-process run, serialized process-wide. ---
  std::lock_guard<std::mutex> L(runMutex());

  // Re-check after (possibly) queueing behind another native run: the
  // run mutex is the tier's head-of-line-blocking point (the "Known
  // limits" in docs/EXECUTION_TIERS.md), and a request whose deadline
  // expired while it waited belongs on the VM, which polls the token
  // and classifies the trap with provenance.
  if (P.Cancel && P.Cancel->expired())
    return fallback(P, Seed, "deadline expired waiting for the native run slot");

  std::string ProfPath;
  if (Profile)
    ProfPath = Cache.dir() + "/prof." + std::to_string(getpid()) + ".json";

  char *OutBuf = nullptr;
  size_t OutLen = 0;
  std::FILE *Mem = open_memstream(&OutBuf, &OutLen);
  if (!Mem)
    return fallback(P, Seed, "open_memstream failed");

  // Per-run reset: cached artifacts keep their globals between runs.
  Art->Srand(Seed);
  Art->ResetGrowthStats();
  Art->ResetMemStats();
  Art->ResetThreadStats();
  Art->SetThreads(P.Threads);
  // The cancellation bridge: mcrt_cancel_point polls the run's token at
  // chunk boundaries inside long fused/parallel loops and faults with
  // "deadline exceeded", which unwinds through the fail handler below
  // and re-runs on the VM for the classified TrapKind::Deadline.
  Art->SetCancelCheck(P.Cancel ? &matcoalNativeCancelCheck : nullptr,
                      const_cast<CancelToken *>(P.Cancel));
  Art->SetOut(Mem);
  Art->SetFailHandler(&matcoalNativeFailHandler);
  if (Profile)
    Art->ProfBegin(ProfPath.c_str());
  g_trap_msg.clear();

  volatile bool Trapped = false;
  auto T0 = std::chrono::steady_clock::now();
  if (setjmp(g_trap_jmp) == 0)
    Art->Entry();
  else
    Trapped = true;
  double Wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  if (Profile)
    Art->ProfEnd();
  Art->SetFailHandler(nullptr);
  Art->SetCancelCheck(nullptr, nullptr);
  Art->SetOut(nullptr);
  std::fclose(Mem); // flushes; OutBuf/OutLen now valid

  std::string Output;
  if (OutBuf) {
    Output.assign(OutBuf, OutLen);
    std::free(OutBuf);
  }

  if (Trapped) {
    // A runtime trap (bounds, shape, error(), complex data, plan
    // violation) unwound via the fail handler. The VM is the
    // authoritative classifier -- it reproduces the trap with TrapKind
    // and "line N (op)" provenance, and it models complex data natively
    // where mcrt clear-faults -- so discard the partial native output
    // (and any partial profile stream) and re-run there.
    if (Profile && !ProfPath.empty()) {
      std::error_code EC;
      std::filesystem::remove(ProfPath, EC);
    }
    return fallback(P, Seed, "native run trapped: " +
                                 (g_trap_msg.empty() ? "mcrt error"
                                                     : g_trap_msg));
  }

  if (Profile && P.Prof) {
    std::string Events = readWholeFile(ProfPath);
    std::error_code EC;
    std::filesystem::remove(ProfPath, EC);
    if (!Events.empty())
      P.Prof->loadEventsJson(Events);
  }

  ExecResult R;
  R.OK = true;
  R.Output = std::move(Output);
  R.WallSeconds = Wall;
  // Native-tier metering: mcrt's heap meter tracks live slot bytes and
  // their high-water mark (time-weighted averages need the VM's virtual
  // clock and stay zero here); growth and thread stats flow into the
  // same ExecResult fields the VM fills, so the counters and the bench
  // tables read uniformly across tiers.
  mcrt_mem_stats MS = Art->GetMemStats();
  R.Mem.PeakHeapBytes = static_cast<std::int64_t>(MS.peak_heap_bytes);
  mcrt_growth_stats GS = Art->GetGrowthStats();
  R.HeapResizes = static_cast<std::uint64_t>(GS.reallocs);
  mcrt_thread_stats TS = Art->GetThreadStats();
  R.ThreadsSpawned = static_cast<std::uint64_t>(TS.spawned);
  R.ThreadChunks = static_cast<std::uint64_t>(TS.chunks);
  R.ThreadBusyNs = static_cast<std::uint64_t>(TS.busy_ns);
  count(P.Obs, "rt.threads.spawned", static_cast<std::int64_t>(TS.spawned));
  count(P.Obs, "rt.threads.chunks", static_cast<std::int64_t>(TS.chunks));
  count(P.Obs, "rt.threads.busy_ns", static_cast<std::int64_t>(TS.busy_ns));
  return R;
}
