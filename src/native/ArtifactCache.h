//===- ArtifactCache.h - Content-addressed native artifacts -----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-artifact cache behind the in-process native execution
/// tier (src/native/NativeEngine). Artifacts are shared objects built
/// from emitted C + the bundled mcrt runtime, addressed by the content
/// of what produced them -- never by file name, program name, or time.
///
/// **Key contract.** A cache key is SHA-256, truncated to its leading
/// 128 bits, of a canonical preimage assembled by the engine from
/// *printed* forms only:
///
///   * the mcrt ABI version stamp (`MCRT_ABI_VERSION`),
///   * a content digest of the mcrt runtime source (mcrt.c + mcrt.h),
///     so a behavioral runtime fix that keeps the ABI shape still
///     retires every cached artifact,
///   * the emitter options (fusion on/off, profiling hooks on/off,
///     optimization flag, entry function),
///   * the printed SO-form IR of the whole module, and
///   * the printed storage plan of every function.
///
/// The hash must be collision-resistant, not merely well-distributed:
/// matcoald compiles untrusted source, and a craftable collision would
/// serve one request another program's artifact.
///
/// Printed forms matter: interned SymExpr node ids are only comparable
/// within one SymExprContext (see the thread-safety contract note in
/// support/SymExpr.h), but the *printed* canonical text of an expression
/// is stable across contexts, requests, and processes. Hashing printed
/// IR + plans is what makes one on-disk cache safely shareable across
/// matcoald requests, workers, and daemon restarts.
///
/// **Disk schema** (documented in DESIGN.md "Artifact cache & ABI"):
///
///   <dir>/v1/<key>.so    the dlopen-able artifact
///   <dir>/v1/<key>.c     the C translation unit it was built from
///   <dir>/v1/<key>.key   the key preimage (debugging: why this key?)
///
/// `<dir>` defaults to $MATCOAL_CACHE_DIR, else a per-user location:
/// $XDG_CACHE_HOME/matcoal/native, else $HOME/.cache/matcoal/native,
/// else /tmp/matcoal-native-cache-<uid>. The directory is created (and
/// tightened) to mode 0700 -- dlopen runs artifact initializers, so the
/// cache must never live where another local user could plant a .so
/// under a predictable key. The v1 component is the schema version:
/// incompatible layout changes land in a sibling directory instead of
/// misreading old entries.
///
/// **Validation.** Loading revalidates: before any dlopen, the cache
/// directory and the .so itself must be regular (no symlinks), owned by
/// the effective user, and not group/other-writable; then a .so that
/// fails dlopen, lacks the expected symbols, or reports an
/// mcrt_abi_version() different from the host's MCRT_ABI_VERSION is
/// *evicted* (unlinked) and reported as corrupt -- the engine then
/// degrades that run to the VM loudly and the next run recompiles.
/// In-memory, loaded artifacts are indexed by key behind a mutex so a
/// hit costs one map lookup; the index is shared by every matcoald
/// worker through the service's one engine instance.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_NATIVE_ARTIFACTCACHE_H
#define MATCOAL_NATIVE_ARTIFACTCACHE_H

#include "codegen/mcrt/mcrt.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace matcoal {

/// A loaded artifact: the dlopened handle plus every mcrt-ABI entry point
/// the engine calls. Symbols are resolved once at load; a missing symbol
/// fails the load (corrupt or stale artifact).
struct NativeArtifact {
  void *Handle = nullptr;
  /// The emitted wrapper the engine calls: runs the program's entry
  /// function (no process spawn, no argv).
  void (*Entry)(void) = nullptr;
  int (*AbiVersion)(void) = nullptr;
  void (*SetFailHandler)(void (*)(const char *)) = nullptr;
  void (*SetOut)(std::FILE *) = nullptr;
  void (*Srand)(unsigned long long) = nullptr;
  void (*ResetGrowthStats)(void) = nullptr;
  void (*ProfBegin)(const char *) = nullptr;
  void (*ProfEnd)(void) = nullptr;
  // ABI v3 surface: worker pool, cancellation bridge, heap metering.
  // Resolved like every other symbol -- an artifact lacking one is stale
  // (pre-v3) and fails the load, which evicts it.
  void (*SetThreads)(int) = nullptr;
  mcrt_thread_stats (*GetThreadStats)(void) = nullptr;
  void (*ResetThreadStats)(void) = nullptr;
  mcrt_mem_stats (*GetMemStats)(void) = nullptr;
  void (*ResetMemStats)(void) = nullptr;
  mcrt_growth_stats (*GetGrowthStats)(void) = nullptr;
  void (*SetCancelCheck)(mcrt_cancel_fn, void *) = nullptr;
  std::string SoPath;

  ~NativeArtifact();
  NativeArtifact() = default;
  NativeArtifact(const NativeArtifact &) = delete;
  NativeArtifact &operator=(const NativeArtifact &) = delete;
};

/// Outcome classification for one cache probe (feeds the pinned
/// native.cache.{hits,misses} counters and the tests).
enum class CacheOutcome {
  MemoryHit, ///< Already loaded in this process.
  DiskHit,   ///< Valid .so on disk; dlopened without running cc.
  Miss,      ///< Nothing usable; caller must compile.
  Corrupt,   ///< A .so existed but failed validation; it was evicted.
};

class ArtifactCache {
public:
  /// \p Dir empty selects $MATCOAL_CACHE_DIR, else the per-user default
  /// (see the file comment).
  explicit ArtifactCache(std::string Dir = "");

  /// 32-hex-digit content address of \p Preimage (SHA-256 truncated to
  /// 128 bits; collision resistance is part of the key contract).
  static std::string contentAddress(const std::string &Preimage);

  /// Probes memory then disk. On MemoryHit/DiskHit the artifact is
  /// returned (and indexed); on Miss/Corrupt it is null and \p Err says
  /// why (empty for a plain miss).
  std::shared_ptr<NativeArtifact> lookup(const std::string &Key,
                                         CacheOutcome &Outcome,
                                         std::string &Err);

  /// Compiles \p CText against \p McrtDir into this key's artifact
  /// (every file lands via write-to-per-attempt-temp-name + atomic
  /// rename, so racing threads and processes never corrupt an entry),
  /// loads and indexes it. \p Preimage is stored beside the artifact
  /// for debugging. Null with \p Err on a cc or load failure.
  /// \p CompileSeconds reports the cc wall time.
  std::shared_ptr<NativeArtifact>
  insert(const std::string &Key, const std::string &CText,
         const std::string &Preimage, const std::string &McrtDir,
         const char *OptFlag, std::string &Err, double &CompileSeconds);

  /// The versioned artifact directory (<dir>/v1).
  const std::string &dir() const { return Dir; }

  /// Path a key's .so lives at (exists or not) -- tests corrupt it.
  std::string soPathFor(const std::string &Key) const;

  /// Drops the in-memory index (artifacts stay on disk). Tests use this
  /// to force the disk-hit path.
  void dropIndex();

private:
  std::shared_ptr<NativeArtifact> loadSo(const std::string &SoPath,
                                         std::string &Err);
  bool ensureDir(std::string &Err) const;

  std::string Dir; ///< <base>/v1, created lazily.
  std::mutex Mu;   ///< Guards Index; cc/dlopen run outside it.
  std::map<std::string, std::shared_ptr<NativeArtifact>> Index;
};

} // namespace matcoal

#endif // MATCOAL_NATIVE_ARTIFACTCACHE_H
