//===- ArtifactCache.cpp --------------------------------------------------===//

#include "native/ArtifactCache.h"

#include "support/Subprocess.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <dlfcn.h>
#include <unistd.h>

#include "codegen/mcrt/mcrt.h" // MCRT_ABI_VERSION (the host's expectation)

using namespace matcoal;

NativeArtifact::~NativeArtifact() {
  if (Handle)
    dlclose(Handle);
}

namespace {

std::string defaultCacheBase() {
  if (const char *Env = std::getenv("MATCOAL_CACHE_DIR"))
    if (Env[0])
      return Env;
  return "/tmp/matcoal-native-cache";
}

/// 64-bit FNV-1a with a caller-chosen offset basis, so two passes give
/// 128 independent bits. No external hash dependency.
std::uint64_t fnv1a(const std::string &S, std::uint64_t H) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex64(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir) {
  if (Dir.empty())
    Dir = defaultCacheBase();
  // The versioned schema component: see the file comment.
  this->Dir = Dir + "/v1";
}

std::string ArtifactCache::contentAddress(const std::string &Preimage) {
  // Two FNV-1a passes from distinct offset bases; the second basis is the
  // standard offset advanced one prime step so the halves are independent.
  std::uint64_t A = fnv1a(Preimage, 14695981039346656037ull);
  std::uint64_t B = fnv1a(Preimage, 14695981039346656037ull *
                                        1099511628211ull);
  return hex64(A) + hex64(B);
}

std::string ArtifactCache::soPathFor(const std::string &Key) const {
  return Dir + "/" + Key + ".so";
}

bool ArtifactCache::ensureDir(std::string &Err) const {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err = "cannot create artifact cache dir " + Dir + ": " + EC.message();
    return false;
  }
  return true;
}

std::shared_ptr<NativeArtifact>
ArtifactCache::loadSo(const std::string &SoPath, std::string &Err) {
  auto Art = std::make_shared<NativeArtifact>();
  Art->SoPath = SoPath;
  // RTLD_LOCAL: every artifact keeps its own mat_* and mcrt globals;
  // programs loaded side by side can never see each other's symbols.
  Art->Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Art->Handle) {
    const char *D = dlerror();
    Err = "dlopen failed: " + std::string(D ? D : "unknown error");
    return nullptr;
  }
  auto Sym = [&](const char *Name) -> void * {
    void *P = dlsym(Art->Handle, Name);
    if (!P && Err.empty())
      Err = std::string("artifact lacks symbol '") + Name + "'";
    return P;
  };
  Art->Entry =
      reinterpret_cast<void (*)(void)>(Sym("matcoal_native_entry"));
  Art->AbiVersion = reinterpret_cast<int (*)(void)>(Sym("mcrt_abi_version"));
  Art->SetFailHandler = reinterpret_cast<void (*)(void (*)(const char *))>(
      Sym("mcrt_set_fail_handler"));
  Art->SetOut =
      reinterpret_cast<void (*)(std::FILE *)>(Sym("mcrt_set_out"));
  Art->Srand =
      reinterpret_cast<void (*)(unsigned long long)>(Sym("mcrt_srand"));
  Art->ResetGrowthStats =
      reinterpret_cast<void (*)(void)>(Sym("mcrt_reset_growth_stats"));
  Art->ProfBegin =
      reinterpret_cast<void (*)(const char *)>(Sym("mcrt_prof_begin"));
  Art->ProfEnd = reinterpret_cast<void (*)(void)>(Sym("mcrt_prof_end"));
  if (!Err.empty())
    return nullptr;
  // The ABI stamp crossing the dlopen boundary: a stale artifact built
  // against an older runtime is rejected here, never called.
  int Got = Art->AbiVersion();
  if (Got != MCRT_ABI_VERSION) {
    Err = "artifact ABI version " + std::to_string(Got) +
          " != host MCRT_ABI_VERSION " + std::to_string(MCRT_ABI_VERSION);
    return nullptr;
  }
  return Art;
}

std::shared_ptr<NativeArtifact>
ArtifactCache::lookup(const std::string &Key, CacheOutcome &Outcome,
                      std::string &Err) {
  Err.clear();
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Outcome = CacheOutcome::MemoryHit;
      return It->second;
    }
  }
  std::string SoPath = soPathFor(Key);
  if (!std::filesystem::exists(SoPath)) {
    Outcome = CacheOutcome::Miss;
    return nullptr;
  }
  std::shared_ptr<NativeArtifact> Art = loadSo(SoPath, Err);
  if (!Art) {
    // Corrupt or stale: evict so the next run recompiles cleanly.
    std::error_code EC;
    std::filesystem::remove(SoPath, EC);
    Outcome = CacheOutcome::Corrupt;
    return nullptr;
  }
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Index.emplace(Key, Art);
  Outcome = CacheOutcome::DiskHit;
  return Inserted ? Art : It->second; // a racing loader won; use theirs
}

std::shared_ptr<NativeArtifact>
ArtifactCache::insert(const std::string &Key, const std::string &CText,
                      const std::string &Preimage,
                      const std::string &McrtDir, const char *OptFlag,
                      std::string &Err, double &CompileSeconds) {
  CompileSeconds = 0;
  if (!ensureDir(Err))
    return nullptr;
  std::string Base = Dir + "/" + Key;
  if (!writeFile(Base + ".c", CText)) {
    Err = "cannot write " + Base + ".c";
    return nullptr;
  }
  (void)writeFile(Base + ".key", Preimage); // best-effort debugging aid
  // Compile to a private temp name, then atomically rename into place:
  // two processes racing on one key both succeed and the loser's rename
  // simply replaces an identical artifact.
  std::string Tmp =
      Base + ".tmp" + std::to_string(static_cast<long>(getpid())) + ".so";
  auto T0 = std::chrono::steady_clock::now();
  SubprocessResult CC = ccCompileShared(Base + ".c", McrtDir, Tmp, OptFlag);
  CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!CC.ok()) {
    Err = CC.Diag;
    std::error_code EC;
    std::filesystem::remove(Tmp, EC);
    return nullptr;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Base + ".so", EC);
  if (EC) {
    Err = "cannot rename artifact into place: " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return nullptr;
  }
  std::shared_ptr<NativeArtifact> Art = loadSo(Base + ".so", Err);
  if (!Art)
    return nullptr;
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Index.emplace(Key, Art);
  return Inserted ? Art : It->second;
}

void ArtifactCache::dropIndex() {
  std::lock_guard<std::mutex> L(Mu);
  Index.clear();
}
