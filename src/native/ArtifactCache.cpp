//===- ArtifactCache.cpp --------------------------------------------------===//

#include "native/ArtifactCache.h"

#include "support/Subprocess.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "codegen/mcrt/mcrt.h" // MCRT_ABI_VERSION (the host's expectation)

using namespace matcoal;

NativeArtifact::~NativeArtifact() {
  if (Handle)
    dlclose(Handle);
}

namespace {

/// The default must be per-user: dlopen runs artifact initializers before
/// the host can check anything, so loading from a fixed world-writable
/// path (the old /tmp/matcoal-native-cache) would let any local user
/// pre-plant a .so under a predictable key and execute code in the
/// matcoalc/matcoald process. $XDG_CACHE_HOME and $HOME/.cache are
/// per-user by convention; the /tmp fallback embeds the uid, and
/// ensureDir()/ownedPrivate() below enforce 0700-style isolation either
/// way.
std::string defaultCacheBase() {
  if (const char *Env = std::getenv("MATCOAL_CACHE_DIR"))
    if (Env[0])
      return Env;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    if (Xdg[0] == '/')
      return std::string(Xdg) + "/matcoal/native";
  if (const char *Home = std::getenv("HOME"))
    if (Home[0] == '/')
      return std::string(Home) + "/.cache/matcoal/native";
  return "/tmp/matcoal-native-cache-" +
         std::to_string(static_cast<long>(::geteuid()));
}

/// Minimal SHA-256 (FIPS 180-4); no external dependency. matcoald
/// accepts untrusted source with native:true, so the content address
/// must be collision-resistant -- a seedable or algebraic hash (the old
/// double-FNV) would let a crafted program alias another program's
/// artifact and be served its code.
struct Sha256 {
  std::uint32_t H[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  unsigned char Block[64];
  std::uint64_t Total = 0;
  std::size_t Fill = 0;

  static std::uint32_t rotr(std::uint32_t X, int N) {
    return (X >> N) | (X << (32 - N));
  }

  void compress(const unsigned char *P) {
    static const std::uint32_t K[64] = {
        0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
        0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
        0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
        0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
        0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
        0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
        0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
        0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
        0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
        0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
        0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
        0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
        0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};
    std::uint32_t W[64];
    for (int I = 0; I < 16; ++I)
      W[I] = (std::uint32_t(P[4 * I]) << 24) |
             (std::uint32_t(P[4 * I + 1]) << 16) |
             (std::uint32_t(P[4 * I + 2]) << 8) | P[4 * I + 3];
    for (int I = 16; I < 64; ++I) {
      std::uint32_t S0 =
          rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
      std::uint32_t S1 =
          rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
      W[I] = W[I - 16] + S0 + W[I - 7] + S1;
    }
    std::uint32_t A = H[0], B = H[1], C = H[2], D = H[3], E = H[4], F = H[5],
                  G = H[6], Hh = H[7];
    for (int I = 0; I < 64; ++I) {
      std::uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
      std::uint32_t Ch = (E & F) ^ (~E & G);
      std::uint32_t T1 = Hh + S1 + Ch + K[I] + W[I];
      std::uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
      std::uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
      std::uint32_t T2 = S0 + Maj;
      Hh = G;
      G = F;
      F = E;
      E = D + T1;
      D = C;
      C = B;
      B = A;
      A = T1 + T2;
    }
    H[0] += A;
    H[1] += B;
    H[2] += C;
    H[3] += D;
    H[4] += E;
    H[5] += F;
    H[6] += G;
    H[7] += Hh;
  }

  void update(const unsigned char *P, std::size_t N) {
    Total += N;
    while (N) {
      std::size_t Take = std::min(N, sizeof(Block) - Fill);
      std::memcpy(Block + Fill, P, Take);
      Fill += Take;
      P += Take;
      N -= Take;
      if (Fill == sizeof(Block)) {
        compress(Block);
        Fill = 0;
      }
    }
  }

  void final(unsigned char Digest[32]) {
    std::uint64_t BitLen = Total * 8;
    const unsigned char Pad = 0x80, Zero = 0;
    update(&Pad, 1);
    while (Fill != 56)
      update(&Zero, 1);
    unsigned char Len[8];
    for (int I = 0; I < 8; ++I)
      Len[I] = static_cast<unsigned char>(BitLen >> (56 - 8 * I));
    update(Len, 8);
    for (int I = 0; I < 8; ++I) {
      Digest[4 * I] = static_cast<unsigned char>(H[I] >> 24);
      Digest[4 * I + 1] = static_cast<unsigned char>(H[I] >> 16);
      Digest[4 * I + 2] = static_cast<unsigned char>(H[I] >> 8);
      Digest[4 * I + 3] = static_cast<unsigned char>(H[I]);
    }
  }
};

/// Unique per attempt, not just per process: matcoald worker threads
/// share one engine and can race insert() on the same key, so a
/// pid-keyed temp name would have two threads compiling into one path.
std::string uniqueSuffix() {
  static std::atomic<unsigned> Counter{0};
  return std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
}

/// Write-temp-then-rename: readers (including a racing cc on the .c
/// file) only ever see a complete old or complete new file.
bool writeFileAtomic(const std::string &Path, const std::string &Text) {
  std::string Tmp = Path + ".tmp" + uniqueSuffix();
  {
    std::ofstream Out(Tmp, std::ios::binary);
    if (!Out)
      return false;
    Out << Text;
    if (!Out.good()) {
      std::error_code EC;
      std::filesystem::remove(Tmp, EC);
      return false;
    }
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

/// The trust check gating every dlopen: \p Path must be exactly the
/// expected kind (lstat, so a symlink planted in the dir never passes),
/// owned by this effective user, and not writable by group or other.
/// Anything else is treated as corrupt and never loaded.
bool ownedPrivate(const std::string &Path, bool WantDir, std::string &Err) {
  struct stat St;
  if (::lstat(Path.c_str(), &St) != 0) {
    Err = "cannot stat " + Path;
    return false;
  }
  if (WantDir ? !S_ISDIR(St.st_mode) : !S_ISREG(St.st_mode)) {
    Err = Path + (WantDir ? " is not a directory" : " is not a regular file");
    return false;
  }
  if (St.st_uid != ::geteuid()) {
    Err = Path + " is owned by uid " + std::to_string(St.st_uid) +
          ", not this user (uid " +
          std::to_string(static_cast<long>(::geteuid())) + ")";
    return false;
  }
  if (St.st_mode & (S_IWGRP | S_IWOTH)) {
    Err = Path + " is writable by group/other; refusing to trust it";
    return false;
  }
  return true;
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir) {
  if (Dir.empty())
    Dir = defaultCacheBase();
  // The versioned schema component: see the file comment.
  this->Dir = Dir + "/v1";
}

std::string ArtifactCache::contentAddress(const std::string &Preimage) {
  // SHA-256 truncated to the leading 128 bits: collision resistance is
  // part of the key contract (DESIGN.md "Artifact cache & ABI").
  Sha256 S;
  S.update(reinterpret_cast<const unsigned char *>(Preimage.data()),
           Preimage.size());
  unsigned char D[32];
  S.final(D);
  static const char Hex[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(32);
  for (int I = 0; I < 16; ++I) {
    Out += Hex[D[I] >> 4];
    Out += Hex[D[I] & 15];
  }
  return Out;
}

std::string ArtifactCache::soPathFor(const std::string &Key) const {
  return Dir + "/" + Key + ".so";
}

bool ArtifactCache::ensureDir(std::string &Err) const {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err = "cannot create artifact cache dir " + Dir + ": " + EC.message();
    return false;
  }
  // create_directories obeys the umask; tighten to owner-only before
  // trusting the directory (best-effort -- ownedPrivate is the gate).
  ::chmod(Dir.c_str(), 0700);
  return ownedPrivate(Dir, /*WantDir=*/true, Err);
}

std::shared_ptr<NativeArtifact>
ArtifactCache::loadSo(const std::string &SoPath, std::string &Err) {
  // Never dlopen from an untrusted location: initializers run before the
  // ABI check below, so ownership/permissions are verified first. A
  // failure here reads as a corrupt artifact (evicted by the caller).
  if (!ownedPrivate(Dir, /*WantDir=*/true, Err) ||
      !ownedPrivate(SoPath, /*WantDir=*/false, Err))
    return nullptr;
  auto Art = std::make_shared<NativeArtifact>();
  Art->SoPath = SoPath;
  // RTLD_LOCAL: every artifact keeps its own mat_* and mcrt globals;
  // programs loaded side by side can never see each other's symbols.
  Art->Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Art->Handle) {
    const char *D = dlerror();
    Err = "dlopen failed: " + std::string(D ? D : "unknown error");
    return nullptr;
  }
  auto Sym = [&](const char *Name) -> void * {
    void *P = dlsym(Art->Handle, Name);
    if (!P && Err.empty())
      Err = std::string("artifact lacks symbol '") + Name + "'";
    return P;
  };
  Art->Entry =
      reinterpret_cast<void (*)(void)>(Sym("matcoal_native_entry"));
  Art->AbiVersion = reinterpret_cast<int (*)(void)>(Sym("mcrt_abi_version"));
  Art->SetFailHandler = reinterpret_cast<void (*)(void (*)(const char *))>(
      Sym("mcrt_set_fail_handler"));
  Art->SetOut =
      reinterpret_cast<void (*)(std::FILE *)>(Sym("mcrt_set_out"));
  Art->Srand =
      reinterpret_cast<void (*)(unsigned long long)>(Sym("mcrt_srand"));
  Art->ResetGrowthStats =
      reinterpret_cast<void (*)(void)>(Sym("mcrt_reset_growth_stats"));
  Art->ProfBegin =
      reinterpret_cast<void (*)(const char *)>(Sym("mcrt_prof_begin"));
  Art->ProfEnd = reinterpret_cast<void (*)(void)>(Sym("mcrt_prof_end"));
  Art->SetThreads =
      reinterpret_cast<void (*)(int)>(Sym("mcrt_set_threads"));
  Art->GetThreadStats = reinterpret_cast<mcrt_thread_stats (*)(void)>(
      Sym("mcrt_get_thread_stats"));
  Art->ResetThreadStats =
      reinterpret_cast<void (*)(void)>(Sym("mcrt_reset_thread_stats"));
  Art->GetMemStats = reinterpret_cast<mcrt_mem_stats (*)(void)>(
      Sym("mcrt_get_mem_stats"));
  Art->ResetMemStats =
      reinterpret_cast<void (*)(void)>(Sym("mcrt_reset_mem_stats"));
  Art->GetGrowthStats = reinterpret_cast<mcrt_growth_stats (*)(void)>(
      Sym("mcrt_get_growth_stats"));
  Art->SetCancelCheck = reinterpret_cast<void (*)(mcrt_cancel_fn, void *)>(
      Sym("mcrt_set_cancel_check"));
  if (!Err.empty())
    return nullptr;
  // The ABI stamp crossing the dlopen boundary: a stale artifact built
  // against an older runtime is rejected here, never called.
  int Got = Art->AbiVersion();
  if (Got != MCRT_ABI_VERSION) {
    Err = "artifact ABI version " + std::to_string(Got) +
          " != host MCRT_ABI_VERSION " + std::to_string(MCRT_ABI_VERSION);
    return nullptr;
  }
  return Art;
}

std::shared_ptr<NativeArtifact>
ArtifactCache::lookup(const std::string &Key, CacheOutcome &Outcome,
                      std::string &Err) {
  Err.clear();
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Outcome = CacheOutcome::MemoryHit;
      return It->second;
    }
  }
  std::string SoPath = soPathFor(Key);
  if (!std::filesystem::exists(SoPath)) {
    Outcome = CacheOutcome::Miss;
    return nullptr;
  }
  std::shared_ptr<NativeArtifact> Art = loadSo(SoPath, Err);
  if (!Art) {
    // Corrupt or stale: evict so the next run recompiles cleanly.
    std::error_code EC;
    std::filesystem::remove(SoPath, EC);
    Outcome = CacheOutcome::Corrupt;
    return nullptr;
  }
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Index.emplace(Key, Art);
  Outcome = CacheOutcome::DiskHit;
  return Inserted ? Art : It->second; // a racing loader won; use theirs
}

std::shared_ptr<NativeArtifact>
ArtifactCache::insert(const std::string &Key, const std::string &CText,
                      const std::string &Preimage,
                      const std::string &McrtDir, const char *OptFlag,
                      std::string &Err, double &CompileSeconds) {
  CompileSeconds = 0;
  if (!ensureDir(Err))
    return nullptr;
  std::string Base = Dir + "/" + Key;
  // Atomic writes: two threads/processes racing on one key write
  // identical bytes (same key, same preimage, same emitted C), and
  // rename() guarantees any reader -- including the racer's cc -- sees a
  // complete file.
  if (!writeFileAtomic(Base + ".c", CText)) {
    Err = "cannot write " + Base + ".c";
    return nullptr;
  }
  (void)writeFileAtomic(Base + ".key", Preimage); // best-effort debug aid
  // Compile to a per-attempt private temp name, then atomically rename
  // into place: racing inserts both succeed and the loser's rename
  // simply replaces an identical artifact.
  std::string Tmp = Base + ".tmp" + uniqueSuffix() + ".so";
  auto T0 = std::chrono::steady_clock::now();
  SubprocessResult CC = ccCompileShared(Base + ".c", McrtDir, Tmp, OptFlag);
  CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!CC.ok()) {
    Err = CC.Diag;
    std::error_code EC;
    std::filesystem::remove(Tmp, EC);
    return nullptr;
  }
  // cc's output mode follows the umask; tighten to owner-only before the
  // artifact becomes visible so ownedPrivate() accepts it.
  ::chmod(Tmp.c_str(), 0700);
  std::error_code EC;
  std::filesystem::rename(Tmp, Base + ".so", EC);
  if (EC) {
    Err = "cannot rename artifact into place: " + EC.message();
    std::filesystem::remove(Tmp, EC);
    return nullptr;
  }
  std::shared_ptr<NativeArtifact> Art = loadSo(Base + ".so", Err);
  if (!Art)
    return nullptr;
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Index.emplace(Key, Art);
  return Inserted ? Art : It->second;
}

void ArtifactCache::dropIndex() {
  std::lock_guard<std::mutex> L(Mu);
  Index.clear();
}
