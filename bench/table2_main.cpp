//===- table2_main.cpp - Reproduces Table 2 (coalescing reductions) ------===//
//
// For each benchmark: the number of statically estimable variables
// subsumed in another array (s), the dynamically allocated variables
// statically subsumed via the partial order (d), the variable count on
// entry to GCTD, and the static storage reduction in KB.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Table 2: Array Storage Coalescing Reductions\n");
  std::printf("%-6s %25s %22s %22s\n", "Bench", "Static/Dynamic Reduction",
              "Original Var Count", "Storage Reduction (KB)");
  std::printf("%.*s\n", 80,
              "------------------------------------------------------------"
              "--------------------");
  auto Suite = compileSuite();
  for (const SuiteEntry &E : Suite) {
    CompiledProgram::Stats S = E.Compiled->stats();
    std::printf("%-6s %14u/%-10u %18u %22.2f\n", E.Prog->Name.c_str(),
                S.StaticSubsumed, S.DynamicSubsumed, S.OriginalVarCount,
                toKB(static_cast<double>(S.StaticReductionBytes)));
  }
  return 0;
}
