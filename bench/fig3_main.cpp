//===- fig3_main.cpp - Reproduces Figure 3 (average virtual memory) ------===//
//
// Virtual-memory levels: dynamic program data plus the process-image
// model (mcc maps its typed run-time library; mat2c inlines operations
// into a larger text segment). Model constants are in Harness.h and
// documented in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 3: Average Virtual Memory Levels (KB)\n");
  std::printf("%-6s %14s %14s %10s\n", "Bench", "mcc VM", "mat2c VM",
              "reduc%");
  std::printf("%.*s\n", 48,
              "------------------------------------------------");
  auto Suite = compileSuite();
  for (const SuiteEntry &E : Suite) {
    ExecResult Mcc = mustRun(E, "mcc", &CompiledProgram::runMcc);
    ExecResult M2c = mustRun(E, "static", &CompiledProgram::runStatic);
    double MccVM = MccImageBytes + Mcc.Mem.AvgDynamicBytes + MccLibraryHeapBytes;
    double M2cVM = E.mat2cImageBytes() + M2c.Mem.AvgDynamicBytes;
    std::printf("%-6s %14.1f %14.1f %9.1f%%\n", E.Prog->Name.c_str(),
                toKB(MccVM), toKB(M2cVM),
                100.0 * (MccVM - M2cVM) / M2cVM);
  }
  return 0;
}
