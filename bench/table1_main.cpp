//===- table1_main.cpp - Table 1 + range-analysis deltas -----------------===//
//
// Part 1 prints the suite description table of the paper (synopsis,
// origin, M-file count, line count).
//
// Part 2 measures what the symbolic range/shape analysis buys each
// program over the types-only pipeline: stack vs heap group counts,
// interference edges, frame bytes, coalescing savings, and the static
// model's runtime and memory. The same numbers are written to
// BENCH_table1.json so drivers can assert on them.
//
// With --native a third axis runs every program on the in-process native
// tier (warmup + median-of-7, same protocol), verifies byte-identity
// against the VM, and reports the artifact-cache counters: a second run
// against the same --cache-dir should show cache_hits == program_count
// and compile_seconds == 0. See docs/EXECUTION_TIERS.md.
//
// The threads axis (always on) runs each program's large-size variant
// (bench/programs; falls back to the Table 1 source) on the static VM at
// 1 vs 4 worker threads, byte-compares the outputs, and records the
// parallel-region chunk counts plus each program's cross-loop fusion
// region count (codegen.fusion.cross_loop) into BENCH_table1.json.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "codegen/CEmitter.h"
#include "gctd/Interference.h"
#include "native/NativeEngine.h"
#include "observe/RuntimeProfiler.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace matcoal;
using namespace matcoal::bench;

namespace {

/// Everything we measure for one program under one AnalysisLevel.
struct Profile {
  unsigned StackGroups = 0;
  unsigned HeapGroups = 0;
  unsigned Edges = 0;
  long long FrameBytes = 0;
  long long StaticReductionBytes = 0;
  double RunSeconds = 0;
  /// p50/p95 over the BenchTimedRuns timed runs, from the same
  /// LatencyHistogram type the service's metrics endpoint exports
  /// (log2 buckets, interpolated quantiles -- coarse by design).
  double RunP50Seconds = 0;
  double RunP95Seconds = 0;
  double AvgDynamicBytes = 0;
  /// Run-time high-water storage across every group slot (one extra,
  /// untimed run under the RuntimeProfiler): the observed counterpart to
  /// the static frame_bytes / static_reduction_bytes columns.
  long long ObservedHwmBytes = 0;
  bool RunOK = false;
};

Profile profile(const BenchmarkProgram &Prog, AnalysisLevel Level,
                bool NoFuse = false, Observer *Obs = nullptr) {
  Profile Out;
  CompileOptions Opts;
  Opts.Analysis = Level;
  Opts.NoFuse = NoFuse;
  Opts.Obs = Obs;
  Diagnostics Diags;
  auto P = compileSource(Prog.Source, Diags, Opts);
  if (!P) {
    std::fprintf(stderr, "failed to compile %s:\n%s\n", Prog.Name.c_str(),
                 Diags.str().c_str());
    std::exit(1);
  }
  // Exercise the C emitter into the same observer so the codegen.*
  // counters (fusion regions, elided checks) ride along in "stats".
  if (Obs && P->M && P->TI) {
    CEmitOptions EOpts;
    EOpts.Fuse = !NoFuse;
    (void)emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges(),
                      Obs, EOpts);
  }
  for (const auto &F : P->module().Functions) {
    const StoragePlan &Plan = P->planOf(*F);
    for (const StorageGroup &G : Plan.Groups) {
      if (G.K == StorageGroup::Kind::Stack)
        ++Out.StackGroups;
      else
        ++Out.HeapGroups;
    }
    Out.FrameBytes += Plan.FrameBytes;
    Out.StaticReductionBytes += Plan.StaticReductionBytes;
    // Rebuild the phase-1 graph with the same facts the plan used to
    // count operator-semantics edges the analysis discharged.
    InterferenceGraph IG(*F, P->types(), /*Coalesce=*/true,
                         ColoringStrategy::Affinity, P->ranges());
    Out.Edges += IG.numEdges();
  }
  LatencyHistogram RunHist;
  ExecResult R = mustRunTimed(*P, Prog.Name.c_str(), "static",
                              &CompiledProgram::runStatic, Obs, &RunHist);
  Out.RunOK = R.OK;
  Out.RunSeconds = R.WallSeconds;
  Out.RunP50Seconds = RunHist.quantile(0.5) / 1e6;
  Out.RunP95Seconds = RunHist.quantile(0.95) / 1e6;
  Out.AvgDynamicBytes = R.Mem.AvgDynamicBytes;
  // One extra untimed run under the profiler (the hooks would pollute the
  // timing above) for the observed high-water bytes.
  RuntimeProfiler RProf;
  P->Prof = &RProf;
  ExecResult PR = P->runStatic();
  P->Prof = nullptr;
  if (PR.OK)
    Out.ObservedHwmBytes = static_cast<long long>(RProf.totalHwmBytes());
  return Out;
}

/// One program's native-tier measurements. The counters come from the
/// FIRST native run only -- that run's cache outcome is the program's
/// cold/warm verdict (later warmup/timed runs would all hit and drown the
/// signal the CI perf-smoke gate asserts on).
struct NativeAxis {
  double RunSeconds = 0;   ///< Median over BenchTimedRuns (after warmup).
  bool Identical = false;  ///< Every native output byte-matched the VM.
  long long Hits = 0, Misses = 0, CompileSeconds = 0;
};

NativeAxis nativeAxis(const BenchmarkProgram &Prog, NativeEngine &Engine) {
  NativeAxis Out;
  Observer Obs;
  CompileOptions Opts;
  Opts.Obs = &Obs;
  Diagnostics Diags;
  auto P = compileSource(Prog.Source, Diags, Opts);
  if (!P) {
    std::fprintf(stderr, "failed to compile %s:\n%s\n", Prog.Name.c_str(),
                 Diags.str().c_str());
    std::exit(1);
  }
  ExecResult VM = P->runStatic(Seed);
  if (!VM.OK) {
    std::fprintf(stderr, "vm run of %s failed: %s\n", Prog.Name.c_str(),
                 VM.Error.c_str());
    std::exit(1);
  }
  Out.Identical = true;
  std::vector<double> Times;
  for (unsigned K = 0; K < BenchWarmupRuns + BenchTimedRuns; ++K) {
    ExecResult R = Engine.run(*P, Seed);
    if (!R.OK) {
      std::fprintf(stderr, "native run of %s failed: %s\n",
                   Prog.Name.c_str(), R.Error.c_str());
      std::exit(1);
    }
    Out.Identical &= R.Output == VM.Output;
    if (K == 0) {
      Out.Hits = Obs.Stats.get("native.cache.hits");
      Out.Misses = Obs.Stats.get("native.cache.misses");
      Out.CompileSeconds = Obs.Stats.get("native.compile_seconds");
    }
    if (K >= BenchWarmupRuns)
      Times.push_back(R.WallSeconds);
  }
  std::sort(Times.begin(), Times.end());
  Out.RunSeconds = Times[Times.size() / 2];
  return Out;
}

/// Worker-thread count for the parallel arm of the threads axis.
constexpr int ThreadsAxisN = 4;

/// One program's threads axis: the large-size variant (bench/programs,
/// sizes scaled past the runtime's parallel threshold; the Table 1
/// source when the program has none) run on the static VM at 1 and
/// ThreadsAxisN worker threads, byte-compared. Chunks counts the
/// parallel-region partitions of one 4-thread run (rt.threads.chunks):
/// zero means no kernel crossed the threshold and the "speedup" is just
/// noise around 1.0.
struct ThreadsAxis {
  bool Large = false;
  double T1Seconds = 0, T4Seconds = 0;
  bool Identical = false;
  long long Chunks = 0;
};

ThreadsAxis threadsAxis(const BenchmarkProgram &Prog) {
  ThreadsAxis Out;
  Out.Large = Prog.hasLarge();
  const std::string &Src = Prog.threadsAxisSource();
  auto CompileAt = [&](int Threads) {
    CompileOptions Opts;
    Opts.Threads = Threads;
    Diagnostics Diags;
    auto P = compileSource(Src, Diags, Opts);
    if (!P) {
      std::fprintf(stderr, "failed to compile %s (threads axis):\n%s\n",
                   Prog.Name.c_str(), Diags.str().c_str());
      std::exit(1);
    }
    return P;
  };
  auto P1 = CompileAt(1);
  auto P4 = CompileAt(ThreadsAxisN);
  ExecResult R1 = mustRunTimed(*P1, Prog.Name.c_str(), "threads1",
                               &CompiledProgram::runStatic);
  ExecResult R4 = mustRunTimed(*P4, Prog.Name.c_str(), "threads4",
                               &CompiledProgram::runStatic);
  Out.T1Seconds = R1.WallSeconds;
  Out.T4Seconds = R4.WallSeconds;
  Out.Identical = R1.Output == R4.Output;
  Out.Chunks = static_cast<long long>(R4.ThreadChunks);
  return Out;
}

/// The per-program counter block, flat: {"name": value, ...} in sorted
/// (deterministic) order.
std::string countersJson(const StatRegistry &S) {
  std::string J = "{";
  bool First = true;
  for (const auto &[Name, Value] : S.all()) {
    if (!First)
      J += ", ";
    First = false;
    J += "\"" + Name + "\": " + std::to_string(Value);
  }
  return J + "}";
}

void jsonProfile(std::string &J, const char *Key, const Profile &P) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "    \"%s\": {\"stack_groups\": %u, \"heap_groups\": %u, "
                "\"interference_edges\": %u, \"frame_bytes\": %lld, "
                "\"static_reduction_bytes\": %lld, \"run_seconds\": %.6f, "
                "\"run_p50_seconds\": %.6f, \"run_p95_seconds\": %.6f, "
                "\"avg_dynamic_bytes\": %.1f, \"observed_hwm_bytes\": %lld}",
                Key, P.StackGroups, P.HeapGroups, P.Edges, P.FrameBytes,
                P.StaticReductionBytes, P.RunSeconds, P.RunP50Seconds,
                P.RunP95Seconds, P.AvgDynamicBytes, P.ObservedHwmBytes);
  J += Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  bool DoNative = false;
  std::string CacheDir;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--native")) {
      DoNative = true;
    } else if (!std::strncmp(Argv[I], "--cache-dir=", 12)) {
      CacheDir = Argv[I] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--native] [--cache-dir=<dir>]\n", Argv[0]);
      return 2;
    }
  }

  std::printf("Table 1: Benchmark Suite Description\n");
  std::printf("%-6s %-48s %-36s %8s %6s\n", "Bench", "Synopsis", "Origin",
              "M-Files", "Lines");
  std::printf("%.*s\n", 108,
              "------------------------------------------------------------"
              "------------------------------------------------");
  unsigned TotalFiles = 0, TotalLines = 0;
  for (const BenchmarkProgram &P : benchmarkSuite()) {
    std::printf("%-6s %-48s %-36s %8u %6u\n", P.Name.c_str(),
                P.Synopsis.c_str(), P.Origin.c_str(), P.mFileCount(),
                P.lineCount());
    TotalFiles += P.mFileCount();
    TotalLines += P.lineCount();
  }
  std::printf("%-6s %-48s %-36s %8u %6u\n", "total", "", "", TotalFiles,
              TotalLines);

  std::printf("\nRange analysis vs types-only pipeline (stack/heap groups, "
              "interference edges)\n");
  std::printf("%-6s %14s %14s %14s %14s %12s %10s\n", "Bench",
              "stack(ty->ra)", "heap(ty->ra)", "edges(ty->ra)", "frameB(ra)",
              "obsHWM(ra)", "improved");
  std::printf("%.*s\n", 91,
              "------------------------------------------------------------"
              "-------------------------------");

  // The suite-wide observer gives one coherent timeline across every
  // program's ranges-pipeline compile and run (BENCH_table1_trace.json).
  Observer Master;
  std::string J = "{\n  \"programs\": {\n";
  unsigned Improved = 0, Count = 0;
  struct FuseRow {
    std::string Name;
    double FusedSec, UnfusedSec;
  };
  std::vector<FuseRow> FuseRows;
  // One engine for the whole suite: the second program onward shares the
  // index the first populated, exactly like matcoald's workers do.
  NativeEngine Engine(CacheDir);
  struct NativeRow {
    std::string Name;
    double VmSec;
    NativeAxis Axis;
  };
  std::vector<NativeRow> NativeRows;
  struct ThreadsRow {
    std::string Name;
    ThreadsAxis Axis;
  };
  std::vector<ThreadsRow> ThreadsRows;
  unsigned CrossLoopPrograms = 0;
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    Profile Ty = profile(Prog, AnalysisLevel::None);
    Observer ProgObs;
    Profile Ra = profile(Prog, AnalysisLevel::Ranges, false, &ProgObs);
    // The --no-fuse axis: same pipeline, destructive execution and loop
    // fusion disabled.
    Profile Un = profile(Prog, AnalysisLevel::Ranges, true);
    FuseRows.push_back({Prog.Name, Ra.RunSeconds, Un.RunSeconds});
    for (const TraceEvent &E : ProgObs.Trace)
      Master.record(TraceEvent{Prog.Name + "." + E.Name, E.StartMicros,
                               E.DurMicros});
    bool Gain = Ra.StackGroups > Ty.StackGroups || Ra.Edges < Ty.Edges;
    Improved += Gain;
    std::printf("%-6s %6u -> %-5u %6u -> %-5u %6u -> %-5u %14lld %12lld "
                "%10s\n",
                Prog.Name.c_str(), Ty.StackGroups, Ra.StackGroups,
                Ty.HeapGroups, Ra.HeapGroups, Ty.Edges, Ra.Edges,
                Ra.FrameBytes, Ra.ObservedHwmBytes, Gain ? "yes" : "no");
    if (Count++)
      J += ",\n";
    J += "  \"" + Prog.Name + "\": {\n";
    jsonProfile(J, "types_only", Ty);
    J += ",\n";
    jsonProfile(J, "ranges", Ra);
    J += ",\n";
    jsonProfile(J, "unfused", Un);
    if (DoNative) {
      NativeAxis Na = nativeAxis(Prog, Engine);
      NativeRows.push_back({Prog.Name, Ra.RunSeconds, Na});
      char NBuf[256];
      std::snprintf(NBuf, sizeof(NBuf),
                    ",\n    \"native\": {\"run_seconds\": %.6f, "
                    "\"identical\": %s, \"cache_hits\": %lld, "
                    "\"cache_misses\": %lld, \"compile_seconds\": %lld}",
                    Na.RunSeconds, Na.Identical ? "true" : "false",
                    Na.Hits, Na.Misses, Na.CompileSeconds);
      J += NBuf;
    }
    // The threads axis: large-size variant at 1 vs ThreadsAxisN worker
    // threads on the static VM, byte-compared (output is identical at
    // any thread count by construction; this run proves it per program).
    ThreadsAxis Ta = threadsAxis(Prog);
    ThreadsRows.push_back({Prog.Name, Ta});
    long long CrossLoop = ProgObs.Stats.get("codegen.fusion.cross_loop");
    CrossLoopPrograms += CrossLoop > 0;
    char TBuf[320];
    std::snprintf(TBuf, sizeof(TBuf),
                  ",\n    \"threads\": {\"large\": %s, \"t1_seconds\": %.6f, "
                  "\"t%d_seconds\": %.6f, \"speedup\": %.3f, "
                  "\"identical\": %s, \"chunks\": %lld}"
                  ",\n    \"cross_loop_regions\": %lld",
                  Ta.Large ? "true" : "false", Ta.T1Seconds, ThreadsAxisN,
                  Ta.T4Seconds,
                  Ta.T4Seconds > 0 ? Ta.T1Seconds / Ta.T4Seconds : 1.0,
                  Ta.Identical ? "true" : "false", Ta.Chunks, CrossLoop);
    J += TBuf;
    J += ",\n    \"stats\": " + countersJson(ProgObs.Stats);
    J += ",\n    \"improved\": ";
    J += Gain ? "true" : "false";
    J += "\n  }";
  }

  std::printf("\nFused vs unfused static model (median of %u runs, %u "
              "warmup)\n",
              BenchTimedRuns, BenchWarmupRuns);
  std::printf("%-6s %12s %12s %9s\n", "Bench", "fused(s)", "unfused(s)",
              "speedup");
  std::printf("%.*s\n", 42,
              "------------------------------------------------------");
  double LogSum = 0;
  for (const FuseRow &Row : FuseRows) {
    double Speedup = Row.FusedSec > 0 ? Row.UnfusedSec / Row.FusedSec : 1.0;
    LogSum += std::log(Speedup > 0 ? Speedup : 1.0);
    std::printf("%-6s %12.6f %12.6f %8.3fx\n", Row.Name.c_str(),
                Row.FusedSec, Row.UnfusedSec, Speedup);
  }
  double Geomean =
      FuseRows.empty() ? 1.0 : std::exp(LogSum / FuseRows.size());
  std::printf("%-6s %12s %12s %8.3fx (geomean)\n", "all", "", "", Geomean);

  std::printf("\nThreads axis: static VM at 1 vs %d worker threads "
              "(large-size variants where available; median of %u runs, "
              "%u warmup)\n",
              ThreadsAxisN, BenchTimedRuns, BenchWarmupRuns);
  std::printf("%-6s %6s %12s %12s %9s %7s %10s\n", "Bench", "large",
              "1-thr(s)", "4-thr(s)", "speedup", "chunks", "identical");
  std::printf("%.*s\n", 68,
              "------------------------------------------------------------"
              "--------");
  unsigned ThreadsSpedUp = 0, ThreadsLarge = 0;
  for (const ThreadsRow &Row : ThreadsRows) {
    double Speedup = Row.Axis.T4Seconds > 0
                         ? Row.Axis.T1Seconds / Row.Axis.T4Seconds
                         : 1.0;
    ThreadsLarge += Row.Axis.Large;
    // "Measurable": a parallel region actually ran (chunks > 0) and the
    // 4-thread median beat the 1-thread median by more than noise.
    ThreadsSpedUp += Row.Axis.Chunks > 0 && Speedup > 1.05;
    std::printf("%-6s %6s %12.6f %12.6f %8.3fx %7lld %10s\n",
                Row.Name.c_str(), Row.Axis.Large ? "yes" : "no",
                Row.Axis.T1Seconds, Row.Axis.T4Seconds, Speedup,
                Row.Axis.Chunks, Row.Axis.Identical ? "yes" : "NO");
  }
  std::printf("%u/%zu programs speed up at %d threads (%u large variants); "
              "%u programs gain cross-loop fusion regions\n",
              ThreadsSpedUp, ThreadsRows.size(), ThreadsAxisN, ThreadsLarge,
              CrossLoopPrograms);

  std::string NativeTotals;
  if (DoNative) {
    std::printf("\nNative tier vs static VM (median of %u runs, %u warmup; "
                "first-run cache outcome)\n",
                BenchTimedRuns, BenchWarmupRuns);
    std::printf("%-6s %12s %12s %9s %7s %10s\n", "Bench", "native(s)",
                "vm(s)", "speedup", "cache", "identical");
    std::printf("%.*s\n", 60,
                "------------------------------------------------------------");
    long long Hits = 0, Misses = 0, CompileSecs = 0, IdCount = 0;
    for (const NativeRow &Row : NativeRows) {
      double Speedup = Row.Axis.RunSeconds > 0
                           ? Row.VmSec / Row.Axis.RunSeconds
                           : 1.0;
      std::printf("%-6s %12.6f %12.6f %8.3fx %7s %10s\n", Row.Name.c_str(),
                  Row.Axis.RunSeconds, Row.VmSec, Speedup,
                  Row.Axis.Hits ? "hit" : "miss",
                  Row.Axis.Identical ? "yes" : "NO");
      Hits += Row.Axis.Hits;
      Misses += Row.Axis.Misses;
      CompileSecs += Row.Axis.CompileSeconds;
      IdCount += Row.Axis.Identical;
    }
    std::printf("cache: %lld hit / %lld miss, %lld compile second(s); "
                "%lld/%zu byte-identical\n",
                Hits, Misses, CompileSecs, IdCount, NativeRows.size());
    NativeTotals = ",\n  \"native\": {\"cache_hits\": " +
                   std::to_string(Hits) +
                   ", \"cache_misses\": " + std::to_string(Misses) +
                   ", \"compile_seconds\": " + std::to_string(CompileSecs) +
                   ", \"identical_count\": " + std::to_string(IdCount) + "}";
  }

  char GeoBuf[64];
  std::snprintf(GeoBuf, sizeof(GeoBuf), "%.4f", Geomean);
  J += "\n  },\n  \"improved_count\": " + std::to_string(Improved) +
       ",\n  \"program_count\": " + std::to_string(Count) + NativeTotals +
       ",\n  \"threads_axis\": {\"threads\": " +
       std::to_string(ThreadsAxisN) +
       ", \"speedup_count\": " + std::to_string(ThreadsSpedUp) +
       ", \"large_count\": " + std::to_string(ThreadsLarge) +
       ", \"identical_count\": " +
       std::to_string(static_cast<unsigned>(std::count_if(
           ThreadsRows.begin(), ThreadsRows.end(),
           [](const ThreadsRow &R) { return R.Axis.Identical; }))) +
       "},\n  \"cross_loop_program_count\": " +
       std::to_string(CrossLoopPrograms) +
       ",\n  \"fusion_speedup_geomean\": " + GeoBuf +
       ",\n  \"protocol\": " + benchProtocolJson() +
       ",\n  \"config\": " + hardwareConfigJson() + "\n}\n";

  std::ofstream Out("BENCH_table1.json");
  Out << J;
  std::ofstream TraceOut("BENCH_table1_trace.json");
  TraceOut << Master.traceJson();
  std::printf("\n%u of %u programs gain stack groups or shed interference "
              "edges; details in BENCH_table1.json (timeline in "
              "BENCH_table1_trace.json)\n",
              Improved, Count);
  return 0;
}
