//===- table1_main.cpp - Reproduces Table 1 (benchmark descriptions) -----===//
//
// Prints the suite description table: synopsis, origin, M-file count and
// non-empty non-comment line count for each program.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"

#include <cstdio>

using namespace matcoal;

int main() {
  std::printf("Table 1: Benchmark Suite Description\n");
  std::printf("%-6s %-48s %-36s %8s %6s\n", "Bench", "Synopsis", "Origin",
              "M-Files", "Lines");
  std::printf("%.*s\n", 108,
              "------------------------------------------------------------"
              "------------------------------------------------");
  unsigned TotalFiles = 0, TotalLines = 0;
  for (const BenchmarkProgram &P : benchmarkSuite()) {
    std::printf("%-6s %-48s %-36s %8u %6u\n", P.Name.c_str(),
                P.Synopsis.c_str(), P.Origin.c_str(), P.mFileCount(),
                P.lineCount());
    TotalFiles += P.mFileCount();
    TotalLines += P.lineCount();
  }
  std::printf("%-6s %-48s %-36s %8u %6u\n", "total", "", "", TotalFiles,
              TotalLines);
  return 0;
}
