//===- ablation_main.cpp - Design-choice ablations ------------------------===//
//
// Ablations of the design decisions DESIGN.md calls out (not a paper
// figure, but a direct probe of the paper's section 5 discussion of
// coloring non-optimality and section 2.2's case for coalescing):
//
//  * coloring strategy: the paper's lexical greedy vs. our in-place
//    affinity tie-break vs. a size-weighted greedy;
//  * phi coalescing on vs. off.
//
// The metric is planned static storage: total stack-frame bytes across
// all functions (lower is better), plus the storage-group count.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "frontend/Parser.h"
#include "gctd/GCTD.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

namespace {

struct PlanSummary {
  std::int64_t FrameBytes = 0;
  unsigned Groups = 0;
};

/// Compiles to SSA (GCTD's input form) without inverting.
struct SSAProgram {
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
};

SSAProgram compileToSSA(const std::string &Source) {
  Diagnostics Diags;
  SSAProgram Out;
  auto Prog = parseProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse failure:\n%s", Diags.str().c_str());
    std::exit(1);
  }
  Out.M = lowerProgram(*Prog, Diags);
  for (auto &F : Out.M->Functions) {
    buildSSA(*F, Diags);
    runCleanupPipeline(*F);
  }
  Out.Ctx = std::make_unique<SymExprContext>();
  Out.TI = std::make_unique<TypeInference>(*Out.M, *Out.Ctx, Diags);
  Out.TI->run("main");
  return Out;
}

PlanSummary summarize(const SSAProgram &P, bool Coalesce,
                      ColoringStrategy Strategy) {
  PlanSummary S;
  for (const auto &F : P.M->Functions) {
    StoragePlan Plan = runGCTDWith(*F, *P.TI, Coalesce, Strategy);
    S.FrameBytes += Plan.FrameBytes;
    S.Groups += static_cast<unsigned>(Plan.Groups.size());
  }
  return S;
}

} // namespace

int main() {
  std::printf("Ablation: coloring strategy and coalescing "
              "(total stack frame KB / storage groups)\n");
  std::printf("%-6s %18s %18s %18s %18s\n", "Bench", "lexical",
              "affinity (dflt)", "size-weighted", "no-coalesce");
  std::printf("%.*s\n", 84,
              "------------------------------------------------------------"
              "------------------------");
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    SSAProgram P = compileToSSA(Prog.Source);
    PlanSummary Lex = summarize(P, true, ColoringStrategy::Lexical);
    PlanSummary Aff = summarize(P, true, ColoringStrategy::Affinity);
    PlanSummary Size = summarize(P, true, ColoringStrategy::SizeWeighted);
    PlanSummary NoCo = summarize(P, false, ColoringStrategy::Affinity);
    char Cells[4][32];
    const PlanSummary *All[4] = {&Lex, &Aff, &Size, &NoCo};
    for (int K = 0; K < 4; ++K)
      std::snprintf(Cells[K], sizeof(Cells[K]), "%9.1f/%-4u",
                    All[K]->FrameBytes / 1024.0, All[K]->Groups);
    std::printf("%-6s %18s %18s %18s %18s\n", Prog.Name.c_str(), Cells[0],
                Cells[1], Cells[2], Cells[3]);
  }
  std::printf("\n(first number: summed stack frames in KB; second: storage "
              "groups. Lower is better.)\n");
  return 0;
}
