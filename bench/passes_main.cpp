//===- passes_main.cpp - Compiler-pass microbenchmarks --------------------===//
//
// Google-benchmark timings of the compiler pipeline stages over the
// benchmark suite (not a paper figure; useful for tracking the cost of
// GCTD itself, which the paper argues is cheap enough for static use).
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"
#include "frontend/Parser.h"
#include "gctd/GCTD.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"

#include <benchmark/benchmark.h>

using namespace matcoal;

namespace {

const std::string &suiteSource(size_t Index) {
  return benchmarkSuite()[Index % benchmarkSuite().size()].Source;
}

void BM_ParseSuite(benchmark::State &State) {
  const std::string &Src = suiteSource(State.range(0));
  for (auto _ : State) {
    Diagnostics Diags;
    auto P = parseProgram(Src, Diags);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseSuite)->DenseRange(0, 10);

void BM_LowerAndSSA(benchmark::State &State) {
  const std::string &Src = suiteSource(State.range(0));
  Diagnostics Diags;
  auto Prog = parseProgram(Src, Diags);
  for (auto _ : State) {
    Diagnostics D2;
    auto M = lowerProgram(*Prog, D2);
    for (auto &F : M->Functions)
      buildSSA(*F, D2);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_LowerAndSSA)->DenseRange(0, 10);

void BM_CleanupPipeline(benchmark::State &State) {
  const std::string &Src = suiteSource(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Diagnostics D;
    auto Prog = parseProgram(Src, D);
    auto M = lowerProgram(*Prog, D);
    for (auto &F : M->Functions)
      buildSSA(*F, D);
    State.ResumeTiming();
    for (auto &F : M->Functions)
      runCleanupPipeline(*F);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_CleanupPipeline)->DenseRange(0, 10);

void BM_TypeInferenceAndGCTD(benchmark::State &State) {
  const std::string &Src = suiteSource(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Diagnostics D;
    auto Prog = parseProgram(Src, D);
    auto M = lowerProgram(*Prog, D);
    for (auto &F : M->Functions) {
      buildSSA(*F, D);
      runCleanupPipeline(*F);
    }
    State.ResumeTiming();
    SymExprContext Ctx;
    TypeInference TI(*M, Ctx, D);
    TI.run("main");
    for (auto &F : M->Functions) {
      StoragePlan Plan = runGCTD(*F, TI);
      benchmark::DoNotOptimize(Plan);
    }
  }
}
BENCHMARK(BM_TypeInferenceAndGCTD)->DenseRange(0, 10);

void BM_FullCompile(benchmark::State &State) {
  const std::string &Src = suiteSource(State.range(0));
  for (auto _ : State) {
    Diagnostics D;
    auto P = compileSource(Src, D);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_FullCompile)->DenseRange(0, 10);

} // namespace

BENCHMARK_MAIN();
