//===- fig4_main.cpp - Reproduces Figure 4 (average resident sets) -------===//
//
// Resident-set levels: the touched portion of the image plus dynamic
// data (non-resident pages don't tax RAM -- paper section 4.5.3).
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 4: Average Resident Set Levels (KB)\n");
  std::printf("%-6s %14s %14s %10s\n", "Bench", "mcc RSS", "mat2c RSS",
              "reduc%");
  std::printf("%.*s\n", 48,
              "------------------------------------------------");
  auto Suite = compileSuite();
  for (const SuiteEntry &E : Suite) {
    ExecResult Mcc = mustRun(E, "mcc", &CompiledProgram::runMcc);
    ExecResult M2c = mustRun(E, "static", &CompiledProgram::runStatic);
    double MccRSS = MccResidentImageBytes + Mcc.Mem.AvgDynamicBytes + MccLibraryHeapBytes;
    double M2cRSS = Mat2cResidentImageBytes +
                    Mat2cBytesPerInstr * E.IRInstrCount +
                    M2c.Mem.AvgDynamicBytes;
    std::printf("%-6s %14.1f %14.1f %9.1f%%\n", E.Prog->Name.c_str(),
                toKB(MccRSS), toKB(M2cRSS),
                100.0 * (MccRSS - M2cRSS) / M2cRSS);
  }
  return 0;
}
