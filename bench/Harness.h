//===- Harness.h - Shared benchmark-suite harness ---------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: compiles
/// each suite program once, runs the requested execution configurations,
/// and provides the memory models documented in EXPERIMENTS.md (process
/// image sizes for the virtual-memory and resident-set figures).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_BENCH_HARNESS_H
#define MATCOAL_BENCH_HARNESS_H

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"
#include "observe/Histogram.h"
#include "observe/Observe.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace matcoal {
namespace bench {

/// Fixed seed: every figure uses the same deterministic runs.
constexpr std::uint64_t Seed = 20030609;

/// Timing protocol (mustRunTimed): each timed configuration first runs
/// BenchWarmupRuns times to warm the allocator and caches, then
/// BenchTimedRuns times, and reports the MEDIAN wall time -- robust to a
/// single scheduling hiccup. Both constants land in every BENCH_*.json
/// through benchProtocolJson() so results carry their own provenance.
constexpr unsigned BenchWarmupRuns = 2;
constexpr unsigned BenchTimedRuns = 7;

inline std::string benchProtocolJson() {
  return "{\"warmup_runs\": " + std::to_string(BenchWarmupRuns) +
         ", \"timed_runs\": " + std::to_string(BenchTimedRuns) +
         ", \"timing\": \"median\"}";
}

/// Process-image model constants (bytes), standing in for the binary and
/// library mappings of the paper's platform. mcc links the run-time typed
/// library (large mappings, small code); mat2c inlines operations (larger
/// code, no library). See EXPERIMENTS.md.
constexpr double MccImageBytes = 8.0 * 1024 * 1024;
/// Heap the mcc run-time library (libmatlb) allocates for its own
/// workspace at startup, independent of program data.
constexpr double MccLibraryHeapBytes = 1.0 * 1024 * 1024;
constexpr double MccResidentImageBytes = 2.0 * 1024 * 1024;
constexpr double Mat2cImageBaseBytes = 1.5 * 1024 * 1024;
constexpr double Mat2cBytesPerInstr = 512.0;
constexpr double Mat2cResidentImageBytes = 0.5 * 1024 * 1024;

/// One compiled suite program plus cached run results. The per-entry
/// Observer collects compile-pass timings and counters (the same streams
/// `matcoalc --stats-json` serializes), plus `run.<config>` spans from
/// mustRun, so every bench timing flows through the one PassTimer clock.
struct SuiteEntry {
  const BenchmarkProgram *Prog = nullptr;
  std::unique_ptr<CompiledProgram> Compiled;
  std::shared_ptr<Observer> Obs;
  unsigned IRInstrCount = 0;

  double mat2cImageBytes() const {
    return Mat2cImageBaseBytes + Mat2cBytesPerInstr * IRInstrCount;
  }
};

/// Compiles the whole suite; exits with a message on any compile error.
inline std::vector<SuiteEntry> compileSuite() {
  std::vector<SuiteEntry> Out;
  for (const BenchmarkProgram &P : benchmarkSuite()) {
    Diagnostics Diags;
    SuiteEntry E;
    E.Prog = &P;
    E.Obs = std::make_shared<Observer>();
    CompileOptions Opts;
    Opts.Obs = E.Obs.get();
    E.Compiled = compileSource(P.Source, Diags, Opts);
    if (!E.Compiled) {
      std::fprintf(stderr, "failed to compile %s:\n%s\n", P.Name.c_str(),
                   Diags.str().c_str());
      std::exit(1);
    }
    for (const auto &F : E.Compiled->module().Functions)
      for (const auto &BB : F->Blocks)
        E.IRInstrCount += static_cast<unsigned>(BB->Instrs.size());
    Out.push_back(std::move(E));
  }
  return Out;
}

/// Runs one configuration, aborting the binary on failure so broken runs
/// cannot masquerade as results. The run lands in the entry's observer as
/// a `run.<which>` span.
inline ExecResult mustRun(const SuiteEntry &E, const char *Which,
                          ExecResult (CompiledProgram::*Fn)(std::uint64_t)
                              const) {
  PassTimer T(E.Obs.get(), std::string("run.") + Which);
  ExecResult R = (E.Compiled.get()->*Fn)(Seed);
  T.stop();
  if (!R.OK) {
    std::fprintf(stderr, "%s run of %s failed: %s\n", Which,
                 E.Prog->Name.c_str(), R.Error.c_str());
    std::exit(1);
  }
  return R;
}

/// mustRun for a standalone CompiledProgram (no SuiteEntry). A non-null
/// \p Obs receives the `run.<which>` span.
inline ExecResult mustRunNamed(const CompiledProgram &P, const char *Name,
                               const char *Which,
                               ExecResult (CompiledProgram::*Fn)(
                                   std::uint64_t) const,
                               Observer *Obs = nullptr) {
  PassTimer T(Obs, std::string("run.") + Which);
  ExecResult R = (P.*Fn)(Seed);
  T.stop();
  if (!R.OK) {
    std::fprintf(stderr, "%s run of %s failed: %s\n", Which, Name,
                 R.Error.c_str());
    std::exit(1);
  }
  return R;
}

/// mustRunNamed under the warmup + median-of-N protocol: the returned
/// result is the last timed run with its WallSeconds replaced by the
/// median over BenchTimedRuns. The observer's `run.<which>` span covers
/// the timed runs only (warmups are unrecorded). A non-null \p Hist
/// receives one microsecond sample per timed run, so percentile columns
/// (p50/p95) come from the same LatencyHistogram type the service's
/// metrics endpoint exports. Aborts on any failure.
inline ExecResult
mustRunTimed(const CompiledProgram &P, const char *Name, const char *Which,
             ExecResult (CompiledProgram::*Fn)(std::uint64_t) const,
             Observer *Obs = nullptr, LatencyHistogram *Hist = nullptr) {
  for (unsigned K = 0; K < BenchWarmupRuns; ++K)
    mustRunNamed(P, Name, Which, Fn, nullptr);
  std::vector<double> Times;
  ExecResult R;
  {
    PassTimer T(Obs, std::string("run.") + Which);
    for (unsigned K = 0; K < BenchTimedRuns; ++K) {
      R = (P.*Fn)(Seed);
      if (!R.OK) {
        std::fprintf(stderr, "%s run of %s failed: %s\n", Which, Name,
                     R.Error.c_str());
        std::exit(1);
      }
      Times.push_back(R.WallSeconds);
      if (Hist)
        Hist->record(static_cast<std::uint64_t>(R.WallSeconds * 1e6));
    }
  }
  std::sort(Times.begin(), Times.end());
  R.WallSeconds = Times[Times.size() / 2];
  return R;
}

inline double toKB(double Bytes) { return Bytes / 1024.0; }

} // namespace bench
} // namespace matcoal

#endif // MATCOAL_BENCH_HARNESS_H
