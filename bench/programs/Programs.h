//===- Programs.h - The 11-program benchmark suite --------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of the paper's Table 1, re-written in the MATLAB
/// subset: adpt capr clos crni diff dich edit fdtd fiff nb1d nb3d. Each
/// program follows the FALCON organization (a driver invoking the main
/// routine). Programs whose paper versions have fully inferable shapes
/// (clos crni dich fdtd fiff) use literal sizes; the others derive their
/// problem sizes from run-time data (the seeded PRNG), reproducing the
/// paper's statically inestimable ("dynamic") storage character.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_BENCH_PROGRAMS_H
#define MATCOAL_BENCH_PROGRAMS_H

#include <string>
#include <vector>

namespace matcoal {

struct BenchmarkProgram {
  std::string Name;
  std::string Synopsis;
  std::string Origin;
  std::string Source;
  /// Large-size variant for the threads axis of bench_table1: the same
  /// program with its driver's problem size scaled so the hot arrays
  /// cross the runtime's parallel threshold (ParMinElems). Empty for
  /// programs whose hot loops are scalar recurrences (adpt, crni, edit,
  /// fiff, ...) or complex-typed (diff) -- scaling those would only make
  /// the serial axis slower without exercising the worker pool; the
  /// threads axis falls back to Source for them.
  std::string LargeSource;

  bool hasLarge() const { return !LargeSource.empty(); }
  const std::string &threadsAxisSource() const {
    return LargeSource.empty() ? Source : LargeSource;
  }

  /// Number of function definitions ("M-files" in the FALCON layout).
  unsigned mFileCount() const;
  /// Non-empty, non-comment source lines (Table 1's "Lines" column).
  unsigned lineCount() const;
};

/// The full suite, in the paper's order.
const std::vector<BenchmarkProgram> &benchmarkSuite();

/// Looks a benchmark up by name; returns nullptr when absent.
const BenchmarkProgram *findBenchmark(const std::string &Name);

} // namespace matcoal

#endif // MATCOAL_BENCH_PROGRAMS_H
