//===- Programs.cpp - The 11-program benchmark suite ----------------------===//

#include "bench/programs/Programs.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <utility>

namespace matcoal {

namespace {

// adpt: Adaptive Quadrature by Simpson's Rule (FALCON). Iterative with an
// explicit interval stack that grows and shrinks at run time, so most
// array sizes are statically inestimable (dynamic), as in the paper.
const char *AdptSource = R"M(
function main
  % driver: integrate f over [0, 2] to a tight tolerance
  tol = 1e-9;
  [q, cnt] = adapt(0, 2, tol);
  fprintf('adpt: integral=%.10f intervals=%d\n', q, cnt);

function [q, cnt] = adapt(a0, b0, tol)
  % iterative adaptive Simpson quadrature with an explicit worklist
  sa(1) = a0;
  sb(1) = b0;
  st(1) = tol;
  top = 1;
  q = 0;
  cnt = 0;
  while top > 0
    a = sa(top);
    b = sb(top);
    t = st(top);
    top = top - 1;
    c = (a + b) / 2;
    s1 = (b - a) / 6 * (fx(a) + 4 * fx(c) + fx(b));
    d = (a + c) / 2;
    e = (c + b) / 2;
    s2 = (b - a) / 12 * (fx(a) + 4 * fx(d) + 2 * fx(c) + 4 * fx(e) + fx(b));
    if abs(s2 - s1) < 15 * t || b - a < 1e-13
      q = q + s2 + (s2 - s1) / 15;
      cnt = cnt + 1;
    else
      top = top + 1;
      sa(top) = a;
      sb(top) = c;
      st(top) = t / 2;
      top = top + 1;
      sa(top) = c;
      sb(top) = b;
      st(top) = t / 2;
    end
  end

function y = fx(x)
  % the integrand
  y = x .* cos(3 * x) + exp(-2 * x) + 1;
)M";

// capr: Transmission Line Capacitance (Chalmers). SOR relaxation of the
// Laplace equation on a coax cross-section plus a charge integration.
// The grid size derives from run-time data, so shapes stay symbolic.
const char *CaprSource = R"M(
function main
  % driver: problem size comes from run-time data (dynamic shapes)
  n = 40 + round(rand() * 8);
  [cap, iters] = capacitor(n);
  fprintf('capr: n=%d cap=%.6f iters=%d\n', n, cap, iters);

function [cap, iters] = capacitor(n)
  % capacitance of a square coax: outer grounded, inner strip at 1V
  f = zeros(n, n);
  mask = innermask(n);
  f = f + mask;
  iters = 0;
  delta = 1;
  while delta > 1e-5 && iters < 400
    g = relax(f);
    g = g .* (1 - mask) + mask;
    delta = max(abs(g(:) - f(:)));
    f = g;
    iters = iters + 1;
  end
  cap = charge(f);

function m = innermask(n)
  % inner conductor occupies the central third of the grid
  m = zeros(n, n);
  lo = floor(n / 3) + 1;
  hi = n - floor(n / 3);
  m(lo:hi, lo:hi) = ones(hi - lo + 1, hi - lo + 1);

function g = relax(f)
  % one Jacobi sweep of the interior
  [n, mcols] = size(f);
  g = f;
  g(2:n-1, 2:mcols-1) = 0.25 * (f(1:n-2, 2:mcols-1) + f(3:n, 2:mcols-1) ...
      + f(2:n-1, 1:mcols-2) + f(2:n-1, 3:mcols));

function q = charge(f)
  % total boundary flux approximates the enclosed charge
  [n, mcols] = size(f);
  q = sum(f(2, 2:mcols-1)) + sum(f(n-1, 2:mcols-1)) ...
      + sum(f(2:n-1, 2)') + sum(f(2:n-1, mcols-1)');
)M";

// clos: Transitive Closure (OTTER). Boolean matrix squaring; every shape
// is explicit in the source, so all storage is stack allocated.
const char *ClosSource = R"M(
function main
  % driver
  n = 80;
  a = rand(n, n) > 0.965;
  c = closure(a, n);
  fprintf('clos: n=%d reachable=%d\n', n, sum(sum(c)));

function c = closure(a, n)
  % repeated boolean squaring: c = (a + I)^ceil(log2 n)
  c = (a + eye(n, n)) > 0;
  k = 1;
  while k < n
    c = (c * c) > 0;
    k = k * 2;
  end
)M";

// crni: Crank-Nicholson Heat Equation Solver (FALCON). The whole
// space-time grid is stored (the paper's 4 MB static reduction); the
// tridiagonal systems are solved with in-line Thomas recurrences.
const char *CrniSource = R"M(
function main
  % driver
  sol = crnich(321, 80);
  fprintf('crni: u(mid,end)=%.8f checksum=%.6f\n', ...
      sol(161, 80), sum(sol(:, 80)'));

function u = crnich(n, m)
  % Crank-Nicholson for u_t = u_xx on [0,1], fixed step sizes
  h = 1 / (n - 1);
  k = 1 / (4 * (m - 1));
  r = k / (h * h);
  u = zeros(n, m);
  % initial condition: sin profile
  x = 0;
  for i = 1:n
    u(i, 1) = sin(3.14159265358979 * x);
    x = x + h;
  end
  % coefficient vectors for the tridiagonal solve
  va = zeros(1, n);
  vb = zeros(1, n);
  vc = zeros(1, n);
  vd = zeros(1, n);
  for j = 2:m
    % build the right-hand side
    vd(1) = 0;
    vd(n) = 0;
    for i = 2:n-1
      vd(i) = r * u(i-1, j-1) + (2 - 2 * r) * u(i, j-1) + r * u(i+1, j-1);
    end
    % Thomas forward sweep
    vb(1) = 1;
    vc(1) = 0;
    for i = 2:n-1
      va(i) = -r;
      vb(i) = 2 + 2 * r;
      vc(i) = -r;
    end
    vb(n) = 1;
    for i = 2:n
      w = va(i) / vb(i-1);
      vb(i) = vb(i) - w * vc(i-1);
      vd(i) = vd(i) - w * vd(i-1);
    end
    % back substitution
    u(n, j) = vd(n) / vb(n);
    for i = n-1:-1:1
      u(i, j) = (vd(i) - vc(i) * u(i+1, j)) / vb(i);
    end
  end
)M";

// diff: Young's Two-Slit Diffraction (MathWorks Central File Exchange).
// Complex phasor sums over a screen; COMPLEX intrinsic types throughout.
const char *DiffSource = R"M(
function main
  % driver
  inten = young(1200);
  fprintf('diff: peak=%.6f mean=%.6f\n', max(inten), ...
      sum(inten) / numel(inten));

function inten = young(np)
  % two-slit interference pattern on a screen of np points
  lambda = 500e-9;
  kwave = 2 * 3.14159265358979 / lambda;
  dsep = 1e-5;
  screenz = 1;
  xs = linspace(-0.02, 0.02, np);
  r1 = sqrt((xs - dsep / 2) .^ 2 + screenz ^ 2);
  r2 = sqrt((xs + dsep / 2) .^ 2 + screenz ^ 2);
  amp = exp(1i * kwave * r1) ./ r1 + exp(1i * kwave * r2) ./ r2;
  inten = abs(amp) .^ 2;
  inten = inten / max(inten);
)M";

// dich: Dirichlet Solution to Laplace's Equation (FALCON). Jacobi sweeps
// with explicit small grids: fully static storage, mostly small arrays.
const char *DichSource = R"M(
function main
  % driver
  u = dirich(64, 300);
  fprintf('dich: center=%.8f edge=%.8f\n', u(32, 32), u(2, 32));

function u = dirich(n, maxit)
  % Laplace on the unit square, top edge held at 100
  u = zeros(n, n);
  u(1, 1:n) = 100 * ones(1, n);
  it = 0;
  diffr = 1;
  while diffr > 1e-4 && it < maxit
    v = u;
    v(2:n-1, 2:n-1) = 0.25 * (u(1:n-2, 2:n-1) + u(3:n, 2:n-1) ...
        + u(2:n-1, 1:n-2) + u(2:n-1, 3:n));
    diffr = max(max(abs(v - u)));
    u = v;
    it = it + 1;
  end
)M";

// edit: Edit Distance (MathWorks Central File Exchange). Dynamic-
// programming over two strings whose lengths derive from run-time data.
const char *EditSource = R"M(
function main
  % driver: build two pseudo-random strings of data-dependent length
  la = 90 + round(rand() * 30);
  lb = 95 + round(rand() * 30);
  sa = 97 + round(rand(1, la) * 24);
  sb = 97 + round(rand(1, lb) * 24);
  d = editdist(sa, sb);
  fprintf('edit: la=%d lb=%d distance=%d\n', la, lb, d);

function d = editdist(sa, sb)
  % classic Levenshtein dynamic program
  m = numel(sa);
  n = numel(sb);
  dp = zeros(m + 1, n + 1);
  for i = 1:m+1
    dp(i, 1) = i - 1;
  end
  for j = 1:n+1
    dp(1, j) = j - 1;
  end
  for i = 2:m+1
    for j = 2:n+1
      if sa(i-1) == sb(j-1)
        cost = 0;
      else
        cost = 1;
      end
      best = dp(i-1, j) + 1;
      alt = dp(i, j-1) + 1;
      if alt < best
        best = alt;
      end
      alt = dp(i-1, j-1) + cost;
      if alt < best
        best = alt;
      end
      dp(i, j) = best;
    end
  end
  d = dp(m+1, n+1);
)M";

// fdtd: Finite Difference Time Domain (Chalmers). Three-dimensional field
// arrays with explicit sizes: the paper's second-largest static savings.
const char *FdtdSource = R"M(
function main
  % driver
  [ex, hy] = fdtd3d(18, 60);
  fprintf('fdtd: probe=%.8f energy=%.6f\n', ex(9, 9, 9), hy);

function [ex, henergy] = fdtd3d(n, steps)
  % Yee-style update on an n^3 cavity with a point source
  ex = zeros(n, n, n);
  ey = zeros(n, n, n);
  ez = zeros(n, n, n);
  hx = zeros(n, n, n);
  hy = zeros(n, n, n);
  hz = zeros(n, n, n);
  ct = 0.5;
  for t = 1:steps
    % magnetic field updates
    hx(1:n, 1:n-1, 1:n-1) = hx(1:n, 1:n-1, 1:n-1) ...
        + ct * (ey(1:n, 1:n-1, 2:n) - ey(1:n, 1:n-1, 1:n-1)) ...
        - ct * (ez(1:n, 2:n, 1:n-1) - ez(1:n, 1:n-1, 1:n-1));
    hy(1:n-1, 1:n, 1:n-1) = hy(1:n-1, 1:n, 1:n-1) ...
        + ct * (ez(2:n, 1:n, 1:n-1) - ez(1:n-1, 1:n, 1:n-1)) ...
        - ct * (ex(1:n-1, 1:n, 2:n) - ex(1:n-1, 1:n, 1:n-1));
    hz(1:n-1, 1:n-1, 1:n) = hz(1:n-1, 1:n-1, 1:n) ...
        + ct * (ex(1:n-1, 2:n, 1:n) - ex(1:n-1, 1:n-1, 1:n)) ...
        - ct * (ey(2:n, 1:n-1, 1:n) - ey(1:n-1, 1:n-1, 1:n));
    % electric field updates
    ex(1:n-1, 2:n, 2:n) = ex(1:n-1, 2:n, 2:n) ...
        + ct * (hz(1:n-1, 2:n, 2:n) - hz(1:n-1, 1:n-1, 2:n)) ...
        - ct * (hy(1:n-1, 2:n, 2:n) - hy(1:n-1, 2:n, 1:n-1));
    ey(2:n, 1:n-1, 2:n) = ey(2:n, 1:n-1, 2:n) ...
        + ct * (hx(2:n, 1:n-1, 2:n) - hx(2:n, 1:n-1, 1:n-1)) ...
        - ct * (hz(2:n, 1:n-1, 2:n) - hz(1:n-1, 1:n-1, 2:n));
    ez(2:n, 2:n, 1:n-1) = ez(2:n, 2:n, 1:n-1) ...
        + ct * (hy(2:n, 2:n, 1:n-1) - hy(1:n-1, 2:n, 1:n-1)) ...
        - ct * (hx(2:n, 2:n, 1:n-1) - hx(2:n, 1:n-1, 1:n-1));
    % point source drive
    ez(9, 9, 9) = ez(9, 9, 9) + sin(0.3 * t);
  end
  henergy = sum(sum(sum(hy .* hy)));
)M";

// fiff: Finite-Difference Solution to the Wave Equation (FALCON). The
// loop-based FALCON style: three full grids carried across time steps
// (the paper's largest static coalescing win; grid scaled from 451 to
// 251 to keep model runs short -- see EXPERIMENTS.md).
const char *FiffSource = R"M(
function main
  % driver
  u = fiff(201, 8);
  fprintf('fiff: u(101,101)=%.8f checksum=%.6f\n', u(101, 101), ...
      sum(u(101, 1:201)));

function u = fiff(n, steps)
  % explicit leapfrog for u_tt = c^2 (u_xx + u_yy), element at a time
  c2 = 0.25;
  uprev = zeros(n, n);
  ucur = zeros(n, n);
  % initial displacement: centered bump
  for i = 75:127
    for j = 75:127
      ucur(i, j) = sin(3.14159 * (i - 74) / 53) * ...
          sin(3.14159 * (j - 74) / 53);
    end
  end
  uprev = ucur;
  for t = 1:steps
    unew = zeros(n, n);
    for i = 2:n-1
      for j = 2:n-1
        unew(i, j) = 2 * ucur(i, j) - uprev(i, j) + c2 * ( ...
            ucur(i-1, j) + ucur(i+1, j) + ucur(i, j-1) + ucur(i, j+1) ...
            - 4 * ucur(i, j));
      end
    end
    uprev = ucur;
    ucur = unew;
  end
  u = ucur;
)M";

// nb1d: One-Dimensional N-Body Simulation (OTTER). The particle count is
// run-time data, so nearly all arrays are dynamically sized.
const char *Nb1dSource = R"M(
function main
  % driver: data-dependent particle count
  n = 90 + round(rand() * 30);
  [p, ke] = nbody1d(n, 40);
  fprintf('nb1d: n=%d spread=%.6f ke=%.6f\n', n, max(p) - min(p), ke);

function [pos, ke] = nbody1d(n, steps)
  % leapfrog integration of n gravitating particles on a line
  dt = 1e-3;
  eps2 = 1e-4;
  pos = linspace(0, 1, n) + 0.01 * rand(1, n);
  vel = zeros(1, n);
  mass = 1 + rand(1, n);
  for t = 1:steps
    acc = zeros(1, n);
    for i = 1:n
      dx = pos - pos(i);
      r2 = dx .* dx + eps2;
      f = mass .* dx ./ (r2 .* sqrt(r2));
      acc(i) = sum(f) - f(i);
    end
    vel = vel + dt * acc;
    pos = pos + dt * vel;
  end
  ke = 0.5 * sum(mass .* vel .* vel);
)M";

// nb3d: Three-Dimensional N-Body Simulation (modified nb1d). Keeps a
// three-dimensional trajectory history array; sizes remain dynamic.
const char *Nb3dSource = R"M(
function main
  % driver: data-dependent particle count
  n = 40 + round(rand() * 16);
  steps = 30;
  [hist, ke] = nbody3d(n, steps);
  fprintf('nb3d: n=%d final=%.6f ke=%.6f\n', n, hist(1, 1, steps), ke);

function [hist, ke] = nbody3d(n, steps)
  % leapfrog in three dimensions with a trajectory history
  dt = 1e-3;
  eps2 = 1e-4;
  pos = rand(n, 3);
  vel = zeros(n, 3);
  mass = 1 + rand(n, 1);
  hist = zeros(n, 3, steps);
  for t = 1:steps
    acc = zeros(n, 3);
    for i = 1:n
      dx = pos(:, 1) - pos(i, 1);
      dy = pos(:, 2) - pos(i, 2);
      dz = pos(:, 3) - pos(i, 3);
      r2 = dx .* dx + dy .* dy + dz .* dz + eps2;
      w = mass ./ (r2 .* sqrt(r2));
      acc(i, 1) = sum(w .* dx);
      acc(i, 2) = sum(w .* dy);
      acc(i, 3) = sum(w .* dz);
    end
    vel = vel + dt * acc;
    pos = pos + dt * vel;
    hist(1:n, 1:3, t) = pos;
  end
  ke = 0.5 * sum(mass' .* sum((vel .* vel)'));
)M";

/// Builds a large-size variant by rewriting driver constants: each
/// (From, To) pair must match exactly once, so a program edit that
/// breaks the rewrite is a loud startup failure, not a silently
/// unscaled benchmark.
std::string scaled(const char *Src,
                   std::initializer_list<std::pair<const char *, const char *>>
                       Repls) {
  std::string S = Src;
  for (const auto &[From, To] : Repls) {
    size_t Pos = S.find(From);
    if (Pos == std::string::npos || S.find(From, Pos + 1) != std::string::npos) {
      std::fprintf(stderr,
                   "benchmark large-variant rewrite '%s' did not match "
                   "exactly once\n",
                   From);
      std::abort();
    }
    S.replace(Pos, std::strlen(From), To);
  }
  return S;
}

} // namespace

unsigned BenchmarkProgram::mFileCount() const {
  unsigned N = 0;
  size_t Pos = 0;
  while ((Pos = Source.find("function ", Pos)) != std::string::npos) {
    // Count only definitions at the start of a line.
    if (Pos == 0 || Source[Pos - 1] == '\n')
      ++N;
    Pos += 9;
  }
  return N;
}

unsigned BenchmarkProgram::lineCount() const {
  unsigned N = 0;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    // Skip blanks and comment-only lines.
    size_t First = Source.find_first_not_of(" \t", Pos);
    if (First < End && Source[First] != '%')
      ++N;
    Pos = End + 1;
  }
  return N;
}

const std::vector<BenchmarkProgram> &benchmarkSuite() {
  // Large variants scale the driver's problem size so the hot vector ops
  // cross the runtime's parallel threshold (kept out of the Table 1 rows
  // themselves -- those reproduce the paper's sizes). Programs dominated
  // by scalar recurrences (adpt, crni, edit, fiff, nb1d, nb3d) or by
  // complex arithmetic (diff) keep an empty LargeSource: the worker pool
  // only partitions real vectorized kernels, so scaling them would
  // measure nothing but a slower serial axis.
  static const std::vector<BenchmarkProgram> Suite = {
      {"adpt", "Adaptive Quadrature by Simpson's Rule", "FALCON",
       AdptSource},
      {"capr", "Transmission Line Capacitance", "Chalmers University",
       CaprSource,
       scaled(CaprSource, {{"n = 40 + round(rand() * 8);",
                            "n = 400 + round(rand() * 8);"},
                           {"while delta > 1e-5 && iters < 400",
                            "while delta > 1e-5 && iters < 60"}})},
      {"clos", "Transitive Closure", "OTTER", ClosSource,
       scaled(ClosSource, {{"n = 80;", "n = 256;"}})},
      {"crni", "Crank-Nicholson Heat Equation Solver", "FALCON",
       CrniSource},
      {"diff", "Young's Two-Slit Diffraction Experiment",
       "MathWorks Central File Exchange", DiffSource},
      {"dich", "Dirichlet Solution to Laplace's Equation", "FALCON",
       DichSource,
       scaled(DichSource, {{"u = dirich(64, 300);", "u = dirich(300, 120);"}})},
      {"edit", "Edit Distance", "MathWorks Central File Exchange",
       EditSource},
      {"fdtd", "Finite Difference Time Domain (FDTD) Technique",
       "Chalmers University", FdtdSource,
       scaled(FdtdSource,
              {{"[ex, hy] = fdtd3d(18, 60);", "[ex, hy] = fdtd3d(40, 25);"}})},
      {"fiff", "Finite-Difference Solution to the Wave Equation", "FALCON",
       FiffSource},
      {"nb1d", "One-Dimensional N-Body Simulation", "OTTER", Nb1dSource},
      {"nb3d", "Three-Dimensional N-Body Simulation", "Modified nb1d",
       Nb3dSource},
  };
  return Suite;
}

const BenchmarkProgram *findBenchmark(const std::string &Name) {
  for (const BenchmarkProgram &P : benchmarkSuite())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

} // namespace matcoal
