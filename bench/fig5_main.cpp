//===- fig5_main.cpp - Reproduces Figure 5 (comparative execution times) -===//
//
// Wall-clock execution times for the mcc model, the mat2c model (with
// GCTD) and the AST interpreter, with mat2c-over-mcc speedups as the
// paper annotates above its bars.
//
//----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <algorithm>
#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 5: Comparative Execution Times (seconds)\n");
  std::printf("%-6s %12s %12s %12s %12s\n", "Bench", "mcc", "mat2c",
              "intrp", "speedup");
  std::printf("%.*s\n", 60,
              "------------------------------------------------------------");
  auto Suite = compileSuite();
  // Warm up allocators and caches so first-run noise doesn't skew the
  // smallest benchmarks.
  if (!Suite.empty())
    (void)Suite.front().Compiled->runStatic(Seed);
  for (const SuiteEntry &E : Suite) {
    ExecResult Mcc = mustRun(E, "mcc", &CompiledProgram::runMcc);
    ExecResult M2c = mustRun(E, "static", &CompiledProgram::runStatic);
    // Best of two: wall clocks on a shared machine jitter.
    ExecResult Mcc2 = mustRun(E, "mcc", &CompiledProgram::runMcc);
    ExecResult M2c2 = mustRun(E, "static", &CompiledProgram::runStatic);
    Mcc.WallSeconds = std::min(Mcc.WallSeconds, Mcc2.WallSeconds);
    M2c.WallSeconds = std::min(M2c.WallSeconds, M2c2.WallSeconds);
    InterpResult Intrp = E.Compiled->runInterp(Seed);
    if (!Intrp.OK) {
      std::fprintf(stderr, "interp run of %s failed: %s\n",
                   E.Prog->Name.c_str(), Intrp.Error.c_str());
      return 1;
    }
    if (Intrp.Output != M2c.Output) {
      std::fprintf(stderr, "%s: interpreter output diverges\n",
                   E.Prog->Name.c_str());
      return 1;
    }
    std::printf("%-6s %12.4f %12.4f %12.4f %11.1fx\n", E.Prog->Name.c_str(),
                Mcc.WallSeconds, M2c.WallSeconds, Intrp.WallSeconds,
                Mcc.WallSeconds / M2c.WallSeconds);
  }
  std::printf("\n(speedup = mcc time / mat2c time, the paper's bar "
              "annotations)\n");
  return 0;
}
