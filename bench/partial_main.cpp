//===- partial_main.cpp - Section 2.1 partial-interference headroom -------===//
//
// The paper's section 2.1 leaves exploiting *partial* interference as
// future work (its example: b could overlap all but a's first element,
// running the computation in five doubles). This harness measures that
// headroom across the suite: interfering statically-sized pairs where one
// side is only read at constant scalar elements within the other's
// range, and the bytes an overlapping allocator could reclaim.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "gctd/PartialInterference.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Partial interference headroom (paper section 2.1, "
              "future work)\n");
  std::printf("%-6s %16s %18s\n", "Bench", "candidate pairs",
              "savable (KB)");
  std::printf("%.*s\n", 42, "------------------------------------------");
  auto Suite = compileSuite();
  for (const SuiteEntry &E : Suite) {
    size_t Pairs = 0;
    std::int64_t Savable = 0;
    for (const auto &F : E.Compiled->module().Functions) {
      InterferenceGraph IG(*F, E.Compiled->types());
      PartialInterferenceReport R =
          analyzePartialInterference(*F, IG, E.Compiled->types());
      Pairs += R.Candidates.size();
      Savable += R.TotalSavableBytes;
    }
    std::printf("%-6s %16zu %18.2f\n", E.Prog->Name.c_str(), Pairs,
                toKB(static_cast<double>(Savable)));
  }
  std::printf("\n(A conservative planner -- ours and the paper's -- "
              "leaves these bytes on the table.)\n");
  return 0;
}
