//===- fig1_main.cpp - Reproduces Figure 1 (generated C for capr) --------===//
//
// Emits the C the back end generates for an in-place array addition taken
// from the capr benchmark, showing the scalar-guarded loops of the
// paper's Figure 1.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "codegen/CEmitter.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 1: generated C for an in-place array addition "
              "(capr)\n\n");
  const BenchmarkProgram *P = findBenchmark("capr");
  Diagnostics Diags;
  auto C = compileSource(P->Source, Diags);
  if (!C) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }
  // The relax() routine contains the elementwise updates; print its code.
  const Function &F = C->function("relax");
  std::string Code = emitFunctionC(F, C->planOf(F), C->types(), C->ranges());
  std::printf("%s\n", Code.c_str());
  return 0;
}
