//===- fig6_main.cpp - Reproduces Figure 6 (effect of GCTD) --------------===//
//
// mat2c-model execution times with the GCTD pass on versus off (identity
// storage plans: every variable gets its own storage and no in-place
// computation is possible), with the relative speedups the paper
// annotates. The paper's most extreme ratio (fiff, ~3.6e5x) came from
// paging on a 128 MB machine; without paging the reproduction shows the
// direction and ranking, not that magnitude.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <algorithm>
#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 6: Effect of Coalescing on Execution Times "
              "(seconds)\n");
  std::printf("%-6s %16s %16s %10s %16s %16s\n", "Bench", "no GCTD",
              "with GCTD", "speedup", "noGCTD dyn KB", "GCTD dyn KB");
  std::printf("%.*s\n", 86,
              "------------------------------------------------------------"
              "--------------------------");
  auto Suite = compileSuite();
  // Warm up allocators and caches so first-run noise doesn't skew the
  // smallest benchmarks.
  if (!Suite.empty())
    (void)Suite.front().Compiled->runStatic(Seed);
  for (const SuiteEntry &E : Suite) {
    ExecResult Without =
        mustRun(E, "nocoalesce", &CompiledProgram::runNoCoalesce);
    ExecResult With = mustRun(E, "static", &CompiledProgram::runStatic);
    ExecResult Without2 =
        mustRun(E, "nocoalesce", &CompiledProgram::runNoCoalesce);
    ExecResult With2 = mustRun(E, "static", &CompiledProgram::runStatic);
    Without.WallSeconds = std::min(Without.WallSeconds,
                                   Without2.WallSeconds);
    With.WallSeconds = std::min(With.WallSeconds, With2.WallSeconds);
    if (Without.Output != With.Output) {
      std::fprintf(stderr, "%s: ablation outputs diverge\n",
                   E.Prog->Name.c_str());
      return 1;
    }
    std::printf("%-6s %16.4f %16.4f %9.2fx %16.1f %16.1f\n",
                E.Prog->Name.c_str(), Without.WallSeconds, With.WallSeconds,
                Without.WallSeconds / With.WallSeconds,
                toKB(Without.Mem.AvgDynamicBytes),
                toKB(With.Mem.AvgDynamicBytes));
  }
  return 0;
}
