//===- native_main.cpp - True mat2c datapoint: compiled C ----------------===//
//
// The paper's mat2c numbers come from real compiled C. This harness takes
// every suite program within the C back end's scope (real values, 2-D
// arrays), emits C, compiles it with the system compiler at -O2, runs the
// binary, verifies its output against the instrumented VM, and reports
// wall times: compiled-native vs the two VM models. The native/mcc-model
// ratio is the closest analogue of the paper's Figure 5 magnitudes.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "codegen/CEmitter.h"
#include "support/Subprocess.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef MCRT_DIR
#define MCRT_DIR "src/codegen/mcrt"
#endif

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  if (!ccAvailable()) {
    std::printf("no system C compiler; skipping native mat2c bench\n");
    return 0;
  }
  // Programs inside mcrt's scope: real-valued (diff is complex and stays
  // on the VM).
  const char *Suitable[] = {"adpt", "capr", "clos", "crni", "dich",
                            "edit", "fdtd", "fiff", "nb1d", "nb3d"};

  std::printf("Native mat2c (emitted C, cc -O2) vs VM models (seconds)\n");
  std::printf("%-6s %12s %12s %12s %14s\n", "Bench", "native", "vm-mat2c",
              "vm-mcc", "mcc/native");
  std::printf("%.*s\n", 62,
              "--------------------------------------------------------------");

  for (const char *Name : Suitable) {
    const BenchmarkProgram *Prog = findBenchmark(Name);
    Diagnostics Diags;
    auto P = compileSource(Prog->Source, Diags);
    if (!P) {
      std::fprintf(stderr, "compile failure for %s\n", Name);
      return 1;
    }
    ExecResult VMStatic = mustRunNamed(*P, Name, "static",
                                       &CompiledProgram::runStatic);
    ExecResult VMMcc = mustRunNamed(*P, Name, "mcc",
                                    &CompiledProgram::runMcc);

    std::string C =
        emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges());
    std::string Dir = "/tmp";
    std::string CPath = Dir + "/matcoal_native_" + Name + ".c";
    std::string Exe = Dir + "/matcoal_native_" + Name;
    {
      std::ofstream Out(CPath);
      Out << C;
    }
    SubprocessResult CC = ccCompile(CPath, MCRT_DIR, Exe, "-O2");
    if (!CC.ok()) {
      std::fprintf(stderr, "%s: C compilation failed: %s\n", Name,
                   CC.Diag.c_str());
      return 1;
    }

    auto T0 = std::chrono::steady_clock::now();
    SubprocessResult Native = runExecutable(Exe, 300000);
    auto T1 = std::chrono::steady_clock::now();
    double NativeSecs = std::chrono::duration<double>(T1 - T0).count();
    if (!Native.ok() || Native.Output != VMStatic.Output) {
      std::fprintf(stderr, "%s: native output diverged from the VM\n",
                   Name);
      return 1;
    }
    std::printf("%-6s %12.4f %12.4f %12.4f %13.1fx\n", Name, NativeSecs,
                VMStatic.WallSeconds, VMMcc.WallSeconds,
                VMMcc.WallSeconds / NativeSecs);
    std::remove(CPath.c_str());
    std::remove(Exe.c_str());
  }
  std::printf("\n(mcc/native approximates the paper's mcc-vs-mat2c gap: "
              "real compiled C\n against a boxed, dispatched runtime.)\n");
  return 0;
}
