//===- fig2_main.cpp - Reproduces Figure 2 (stack and stack+heap levels) -===//
//
// Average stack-segment and dynamic-program-data (stack + heap) levels of
// the mcc-model and mat2c-model executions, with the relative reduction
// percentages the paper annotates above the bars, and kcore-min values.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>

using namespace matcoal;
using namespace matcoal::bench;

int main() {
  std::printf("Figure 2: Average Stack, and Stack+Heap Levels (KB)\n");
  std::printf("%-6s %12s %12s %12s %12s %10s %14s %14s\n", "Bench",
              "mcc stack", "m2c stack", "mcc s+h", "m2c s+h", "reduc%",
              "mcc kcoremin", "m2c kcoremin");
  std::printf("%.*s\n", 100,
              "------------------------------------------------------------"
              "----------------------------------------");
  auto Suite = compileSuite();
  for (const SuiteEntry &E : Suite) {
    ExecResult Mcc = mustRun(E, "mcc", &CompiledProgram::runMcc);
    ExecResult M2c = mustRun(E, "static", &CompiledProgram::runStatic);
    if (Mcc.Output != M2c.Output) {
      std::fprintf(stderr, "%s: model outputs diverge\n",
                   E.Prog->Name.c_str());
      return 1;
    }
    double MccDyn = Mcc.Mem.AvgDynamicBytes + MccLibraryHeapBytes;
    double M2cDyn = M2c.Mem.AvgDynamicBytes;
    double Reduc = 100.0 * (MccDyn - M2cDyn) / M2cDyn;
    // kcore-min = mean KB x minutes of execution (paper section 4.5.2.1).
    double MccKCM = toKB(MccDyn) * (Mcc.WallSeconds / 60.0);
    double M2cKCM = toKB(M2cDyn) * (M2c.WallSeconds / 60.0);
    std::printf("%-6s %12.1f %12.1f %12.1f %12.1f %9.1f%% %14.5f %14.5f\n",
                E.Prog->Name.c_str(), toKB(Mcc.Mem.AvgStackSegBytes),
                toKB(M2c.Mem.AvgStackSegBytes), toKB(MccDyn), toKB(M2cDyn),
                Reduc, MccKCM, M2cKCM);
  }
  std::printf("\n(reduc%% = dynamic-data reduction of mat2c relative to "
              "mcc, as annotated above the paper's bars)\n");
  return 0;
}
