//===- quickstart.cpp - Minimal end-to-end use of the library -------------===//
//
// Compiles a small MATLAB program through the full GCTD pipeline, prints
// the Table-2-style coalescing statistics, and runs it under the
// optimized static model.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace matcoal;

int main() {
  const char *Source = R"M(
% Paper Example 1: a chain of elementwise operations. GCTD binds t0..t3
% to one storage area, reused in place.
t0 = rand(64, 64);
t1 = t0 - 1.345;
t2 = 2.788 .* t1;
t3 = tan(t2);
fprintf('result checksum: %.6f\n', sum(sum(abs(t3))));
)M";

  Diagnostics Diags;
  auto Program = compileSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  // What did GCTD coalesce?
  CompiledProgram::Stats S = Program->stats();
  std::printf("variables entering GCTD : %u\n", S.OriginalVarCount);
  std::printf("statically subsumed     : %u\n", S.StaticSubsumed);
  std::printf("dynamically subsumed    : %u\n", S.DynamicSubsumed);
  std::printf("stack storage saved     : %.1f KB\n\n",
              S.StaticReductionBytes / 1024.0);

  // The storage plan for the entry function, human readable.
  const Function &Main = Program->function("main");
  std::printf("%s\n", Program->planOf(Main).str(Main).c_str());

  // Run it.
  ExecResult R = Program->runStatic();
  if (!R.OK) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("program output:\n%s", R.Output.c_str());
  std::printf("\nexecuted %llu ops; average dynamic data %.1f KB\n",
              static_cast<unsigned long long>(R.Ops),
              R.Mem.AvgDynamicBytes / 1024.0);
  return 0;
}
