//===- embedded_budget.cpp - Will this program fit on the target? ---------===//
//
// The paper's motivation: MATLAB prototypes get deployed on
// memory-limited targets (DSPs, embedded devices). This example uses the
// storage plans to answer the deployment question statically: how much
// stack does each function's frame need, which storage is dynamically
// sized (so only bounded at run time), and does the whole call tree fit a
// given RAM budget? It then validates the static bound against a metered
// run.
//
//   $ ./embedded_budget [budget_kb]
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <cstdlib>

using namespace matcoal;

int main(int Argc, char **Argv) {
  double BudgetKB = Argc > 1 ? std::atof(Argv[1]) : 96.0;

  // A DSP-style workload: a fixed-size FIR filter over a signal frame.
  const char *Source = R"M(
function main
  frame = makeframe(1024);
  taps = maketaps(32);
  out = fir(frame, taps);
  fprintf('energy in: %.4f  out: %.4f\n', sum(frame .* frame), ...
      sum(out .* out));

function s = makeframe(n)
  s = sin(0.02 * (1:n)) + 0.1 * rand(1, n);

function t = maketaps(n)
  t = ones(1, n) / n;

function y = fir(x, h)
  n = numel(x);
  m = numel(h);
  y = zeros(1, n);
  for i = m:n
    acc = 0;
    for k = 1:m
      acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
  end
)M";

  Diagnostics Diags;
  auto Program = compileSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("static storage report (budget %.1f KB)\n\n", BudgetKB);
  std::printf("%-12s %12s %14s %12s\n", "function", "frame KB",
              "stack groups", "heap groups");
  double WorstStack = 0;
  bool AnyDynamic = false;
  for (const auto &F : Program->module().Functions) {
    const StoragePlan &Plan = Program->planOf(*F);
    unsigned StackGroups = 0, HeapGroups = 0;
    for (const StorageGroup &G : Plan.Groups) {
      if (G.K == StorageGroup::Kind::Stack)
        ++StackGroups;
      else
        ++HeapGroups;
    }
    AnyDynamic |= HeapGroups != 0;
    std::printf("%-12s %12.2f %14u %12u\n", F->Name.c_str(),
                Plan.FrameBytes / 1024.0, StackGroups, HeapGroups);
    WorstStack += Plan.FrameBytes / 1024.0; // All frames may nest.
  }
  std::printf("\nworst-case nested stack: %.2f KB\n", WorstStack);
  if (AnyDynamic)
    std::printf("note: dynamically sized storage present; the static "
                "bound covers the stack only\n");

  ExecResult R = Program->runStatic();
  if (!R.OK) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  double MeasuredKB =
      (R.Mem.PeakStackSegBytes + R.Mem.PeakHeapBytes) / 1024.0;
  std::printf("measured peak (stack segment + heap): %.2f KB\n",
              MeasuredKB);
  std::printf("%s", R.Output.c_str());

  if (MeasuredKB <= BudgetKB) {
    std::printf("\nfits the %.1f KB budget.\n", BudgetKB);
    return 0;
  }
  std::printf("\nEXCEEDS the %.1f KB budget by %.2f KB.\n", BudgetKB,
              MeasuredKB - BudgetKB);
  return 2;
}
