//===- inspect_plan.cpp - Dive into interference and generated C ----------===//
//
// Shows the analysis layers under GCTD for a program with interesting
// operator-semantics interference: the interference decisions for matrix
// multiply vs array addition (paper section 2.3), the resulting storage
// plan, and the C code the back end emits (Figure 1 style loops).
//
//   $ ./inspect_plan
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "gctd/GCTD.h"

#include <cstdio>

using namespace matcoal;

int main() {
  const char *Source = R"M(
a = rand(32, 32);
b = rand(32, 32);
c = a + b;       % elementwise: c may form in place in a or b
d = c * c;       % matrix multiply: d must NOT share storage with c
e = d(:, 1);     % column slice: array subscript, not in-place
f = e + 1;       % elementwise again
disp(sum(f));
)M";

  Diagnostics Diags;
  auto Program = compileSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  const Function &Main = Program->function("main");

  // Rebuild the phase-1 interference graph to inspect it (the compiled
  // program only retains the final plan).
  InterferenceGraph IG(Main, Program->types());
  std::printf("interference decisions (paper section 2.3):\n");
  auto Named = [&](const char *Base) -> VarId {
    for (unsigned V = 0; V < Main.numVars(); ++V)
      if (Main.var(V).Base == Base && Main.var(V).Version == 0)
        return static_cast<VarId>(V);
    return NoVar;
  };
  struct Pair {
    const char *X, *Y;
  } Pairs[] = {{"a", "c"}, {"b", "c"}, {"c", "d"}, {"d", "e"}, {"e", "f"}};
  for (const Pair &P : Pairs) {
    VarId X = Named(P.X), Y = Named(P.Y);
    if (X == NoVar || Y == NoVar)
      continue;
    std::printf("  %s -- %s : %s\n", P.X, P.Y,
                IG.interferes(X, Y) ? "interfere (separate storage)"
                                    : "free to share");
  }
  std::printf("\ncolors used: %u\n\n", IG.numColors());

  std::printf("%s\n", Program->planOf(Main).str(Main).c_str());

  std::printf("generated C (mat2c back end):\n\n%s",
              emitFunctionC(Main, Program->planOf(Main), Program->types(),
                            Program->ranges())
                  .c_str());

  ExecResult R = Program->runStatic();
  std::printf("\nprogram output:\n%s", R.Output.c_str());
  return R.OK ? 0 : 1;
}
