//===- memory_comparison.cpp - One workload, four execution paths ---------===//
//
// Runs a heat-diffusion workload (the motivating scenario of the paper's
// introduction: array code destined for memory-limited targets) under
// the mcc model, the GCTD-optimized static model, the no-coalescing
// ablation, and the interpreter, and prints a comparison table.
//
//   $ ./memory_comparison
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace matcoal;

int main() {
  const char *Source = R"M(
function main
  u = heat(96, 120);
  fprintf('final center temperature: %.6f\n', u(48, 48));

function u = heat(n, steps)
  u = zeros(n, n);
  u(n / 2 - 4 : n / 2 + 4, n / 2 - 4 : n / 2 + 4) = ...
      ones(9, 9) * 100;
  for t = 1:steps
    v = u;
    v(2:n-1, 2:n-1) = u(2:n-1, 2:n-1) + 0.2 * ( ...
        u(1:n-2, 2:n-1) + u(3:n, 2:n-1) + u(2:n-1, 1:n-2) ...
        + u(2:n-1, 3:n) - 4 * u(2:n-1, 2:n-1));
    u = v;
  end
)M";

  Diagnostics Diags;
  auto Program = compileSource(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  ExecResult Mcc = Program->runMcc();
  ExecResult Static = Program->runStatic();
  ExecResult NoCoal = Program->runNoCoalesce();
  InterpResult Intrp = Program->runInterp();
  if (!Mcc.OK || !Static.OK || !NoCoal.OK || !Intrp.OK) {
    std::fprintf(stderr, "a run failed: %s%s%s%s\n", Mcc.Error.c_str(),
                 Static.Error.c_str(), NoCoal.Error.c_str(),
                 Intrp.Error.c_str());
    return 1;
  }
  if (Static.Output != Mcc.Output || NoCoal.Output != Mcc.Output ||
      Intrp.Output != Mcc.Output) {
    std::fprintf(stderr, "outputs diverge between execution paths!\n");
    return 1;
  }

  std::printf("workload output: %s\n", Mcc.Output.c_str());
  std::printf("%-22s %14s %14s %12s\n", "configuration", "avg dyn KB",
              "peak heap KB", "seconds");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "------");
  auto Row = [](const char *Name, const MemoryStats &M, double Secs) {
    std::printf("%-22s %14.1f %14.1f %12.4f\n", Name,
                M.AvgDynamicBytes / 1024.0, M.PeakHeapBytes / 1024.0, Secs);
  };
  Row("mcc (boxed heap)", Mcc.Mem, Mcc.WallSeconds);
  Row("mat2c + GCTD", Static.Mem, Static.WallSeconds);
  Row("mat2c, no coalescing", NoCoal.Mem, NoCoal.WallSeconds);
  std::printf("%-22s %14s %14s %12.4f\n", "interpreter", "-", "-",
              Intrp.WallSeconds);

  double Saved = NoCoal.Mem.AvgDynamicBytes - Static.Mem.AvgDynamicBytes;
  std::printf("\nGCTD removed %.1f KB (%.0f%%) of the uncoalesced "
              "footprint.\n",
              Saved / 1024.0,
              100.0 * Saved / NoCoal.Mem.AvgDynamicBytes);
  return 0;
}
