//===- matlab_runner.cpp - Compile and run a .m file from disk ------------===//
//
// A small mat2c-style command-line tool: reads a MATLAB source file,
// compiles it with GCTD, and executes it.
//
//   $ ./matlab_runner script.m             # compile + run (static model)
//   $ ./matlab_runner --mcc script.m       # run under the mcc model
//   $ ./matlab_runner --interp script.m    # interpret the AST
//   $ ./matlab_runner --plan script.m      # print storage plans only
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace matcoal;

static void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--mcc|--interp|--plan|--stats|--emit-c] "
               "<file.m>\n",
               Argv0);
}

int main(int Argc, char **Argv) {
  const char *Mode = "static";
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--", 2) == 0)
      Mode = Argv[I] + 2;
    else
      Path = Argv[I];
  }
  if (!Path) {
    usage(Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Diagnostics Diags;
  auto Program = compileSource(Buf.str(), Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  // Surface warnings (unknown builtins, use-before-def notes).
  for (const Diagnostic &D : Diags.all())
    if (D.Level != DiagLevel::Error)
      std::fprintf(stderr, "%s\n", D.str().c_str());

  if (std::strcmp(Mode, "emit-c") == 0) {
    // mat2c mode: print the C translation (compile against
    // src/codegen/mcrt/mcrt.c).
    std::fputs(
        emitModuleC(Program->module(), Program->GCTDPlans, Program->types(),
                    Program->ranges())
            .c_str(),
        stdout);
    return 0;
  }
  if (std::strcmp(Mode, "plan") == 0) {
    for (const auto &F : Program->module().Functions)
      std::printf("%s\n", Program->planOf(*F).str(*F).c_str());
    return 0;
  }
  if (std::strcmp(Mode, "stats") == 0) {
    CompiledProgram::Stats S = Program->stats();
    std::printf("%u variables, %u static + %u dynamic subsumed, "
                "%.2f KB static reduction\n",
                S.OriginalVarCount, S.StaticSubsumed, S.DynamicSubsumed,
                S.StaticReductionBytes / 1024.0);
    return 0;
  }
  if (std::strcmp(Mode, "interp") == 0) {
    InterpResult R = Program->runInterp();
    std::fputs(R.Output.c_str(), stdout);
    if (!R.OK)
      std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return R.OK ? 0 : 1;
  }

  ExecResult R = std::strcmp(Mode, "mcc") == 0 ? Program->runMcc()
                                               : Program->runStatic();
  std::fputs(R.Output.c_str(), stdout);
  if (!R.OK) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[%llu ops, %.1f KB avg dynamic data, %.4f s]\n",
               static_cast<unsigned long long>(R.Ops),
               R.Mem.AvgDynamicBytes / 1024.0, R.WallSeconds);
  return 0;
}
