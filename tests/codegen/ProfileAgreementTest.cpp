//===- ProfileAgreementTest.cpp - VM vs compiled-C profile agreement ------===//
//
// The cross-tier check behind --emit-profiling: run a program once under
// the VM's RuntimeProfiler and once as compiled C with mcrt_prof_* hooks,
// then require the two event streams to agree on per-group high-water
// bytes. The tiers count ops differently (their clocks need not match),
// but the storage groups are the same plan, so the peaks must be.
//
// Fusion is disabled on the C side here: fused chains elide intermediate
// group stores (and their hooks) by design, which is exactly the kind of
// divergence this test exists to distinguish from accounting bugs.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "support/Subprocess.h"
#include "observe/RuntimeProfiler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace matcoal;

#ifndef MCRT_DIR
#define MCRT_DIR "."
#endif

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// (function, group) -> peak bytes, group slots only.
std::map<std::pair<std::string, int>, std::int64_t>
groupHwms(const RuntimeProfiler &Prof) {
  std::map<std::pair<std::string, int>, std::int64_t> Out;
  for (const MemTimeline *T : Prof.timelines())
    if (T->Group >= 0)
      Out[{T->Function, T->Group}] = T->HwmBytes;
  return Out;
}

struct CProg {
  const char *Name;
  const char *Source;
};

class ProfileAgreementTest : public ::testing::TestWithParam<CProg> {};

TEST_P(ProfileAgreementTest, PerGroupHighWaterBytesAgree) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";

  Diagnostics Diags;
  auto P = compileSource(GetParam().Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  // Tier 1: the VM under its profiler.
  RuntimeProfiler VMProf;
  P->Prof = &VMProf;
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK) << VM.Error;
  auto VMHwm = groupHwms(VMProf);
  ASSERT_FALSE(VMHwm.empty());

  // Tier 2: compiled C with profiling hooks, unfused (see file comment).
  CEmitOptions EOpts;
  EOpts.Fuse = false;
  EOpts.Profile = true;
  std::string C =
      emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges(),
                  nullptr, EOpts);
  ASSERT_NE(C.find("mcrt_prof_size"), std::string::npos);

  std::string Dir = ::testing::TempDir();
  std::string Base = Dir + "/matcoal_prof_" + GetParam().Name;
  std::string CPath = Base + ".c", Exe = Base, Json = Base + ".json";
  {
    std::ofstream Out(CPath);
    ASSERT_TRUE(Out.good());
    Out << C;
  }
  SubprocessResult CC = ccCompile(CPath, MCRT_DIR, Exe);
  ASSERT_TRUE(CC.ok()) << CC.Diag << "\n" << C;

  SubprocessResult Run =
      runExecutable(Exe, 60000, {{"MCRT_PROF_OUT", Json}});
  ASSERT_TRUE(Run.ok()) << Run.Diag << "\n" << Run.Output;
  EXPECT_EQ(Run.Output, VM.Output);

  std::string Stream = readFile(Json);
  ASSERT_NE(Stream.find("\"source\": \"mcrt\""), std::string::npos) << Stream;

  // The VM-side parser replays the mcrt stream; the derived peaks must
  // match the VM's for every group the compiled program materialized.
  RuntimeProfiler CProf;
  ASSERT_TRUE(CProf.loadEventsJson(Stream));
  auto CHwm = groupHwms(CProf);
  ASSERT_FALSE(CHwm.empty());
  for (const auto &[Key, Hwm] : CHwm) {
    auto It = VMHwm.find(Key);
    ASSERT_NE(It, VMHwm.end())
        << Key.first << "/g" << Key.second << " only in the C stream";
    EXPECT_EQ(It->second, Hwm)
        << Key.first << "/g" << Key.second << " peaks diverge";
  }

  // Determinism: a second compiled run writes a byte-identical stream.
  std::string Json2 = Base + "_2.json";
  ASSERT_TRUE(runExecutable(Exe, 60000, {{"MCRT_PROF_OUT", Json2}}).ok());
  EXPECT_EQ(Stream, readFile(Json2));

  std::remove(CPath.c_str());
  std::remove(Exe.c_str());
  std::remove(Json.c_str());
  std::remove(Json2.c_str());
}

const CProg Programs[] = {
    {"chain",
     "t0 = rand(8, 8);\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\n"
     "t3 = tan(t2);\nfprintf('%.6f\\n', sum(sum(abs(t3))));\n"},

    {"heat",
     "n = 16;\nu = zeros(1, n);\nu(8) = 1;\nfor t = 1:12\nv = u;\n"
     "for k = 2:n-1\nv(k) = u(k) + 0.4 * (u(k-1) - 2 * u(k) + u(k+1));\n"
     "end\nu = v;\nend\nfprintf('%.6f ', u);\nfprintf('\\n');\n"},

    {"functions",
     "function main\nA = [4, 1; 1, 3];\nb = [1; 2];\nx = A \\ b;\n"
     "fprintf('%.6f %.6f\\n', x(1), x(2));\ndisp(peak([3, 9, 4]));\n\n"
     "function m = peak(v)\nm = max(v);\n"},
};

INSTANTIATE_TEST_SUITE_P(Programs, ProfileAgreementTest,
                         ::testing::ValuesIn(Programs),
                         [](const ::testing::TestParamInfo<CProg> &Info) {
                           return Info.param.Name;
                         });

} // namespace
