//===- CEmitterTest.cpp - C emission golden tests -------------------------===//

#include "codegen/CEmitter.h"

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::string emit(const std::string &Src, const std::string &Fn = "main") {
  Diagnostics Diags;
  auto P = compileSource(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  const Function &F = P->function(Fn);
  return emitFunctionC(F, P->planOf(F), P->types(), P->ranges());
}

bool contains(const std::string &Hay, const std::string &Needle) {
  return Hay.find(Needle) != std::string::npos;
}

TEST(CEmitter, StackGroupsBecomeFixedArrays) {
  std::string C = emit("a = rand(4, 4);\nb = a + 1;\ndisp(b);\n");
  // A 16-element double buffer must be declared for the coalesced group.
  EXPECT_TRUE(contains(C, "double g")) << C;
  EXPECT_TRUE(contains(C, "[16]")) << C;
}

TEST(CEmitter, InPlaceAdditionLoopMatchesFigure1Shape) {
  // Figure 1: the array-addition loop writes through the same buffer it
  // reads (in-place formation legalized by GCTD).
  std::string C = emit("a = rand(4, 4);\nb = a + 1;\ndisp(b);\n");
  // The scalar-plus-array specialization with a hoisted scalar.
  EXPECT_TRUE(contains(C, "__s")) << C;
  EXPECT_TRUE(contains(C, "for (__i = 0; __i <")) << C;
  // With a + 1 coalesced into one group, source and destination buffers
  // coincide textually: gN[__i] = gN[__i] + __s.
  EXPECT_TRUE(contains(C, "b.0 <- a.0")) << C;
  bool InPlace = false;
  for (size_t Pos = C.find("for (__i"); Pos != std::string::npos;
       Pos = C.find("for (__i", Pos + 1)) {
    std::string Body = C.substr(Pos, 200);
    size_t Assign = Body.find("] = ");
    if (Assign == std::string::npos)
      continue;
    std::string Dst = Body.substr(Body.find("\n") + 1);
    Dst = Dst.substr(Dst.find_first_not_of(' '));
    std::string BufName = Dst.substr(0, Dst.find('['));
    InPlace |= Dst.find(BufName + "[__i] = " + BufName + "[__i]") == 0;
  }
  EXPECT_TRUE(InPlace) << C;
}

TEST(CEmitter, DynamicShapesGetThreeWayGuard) {
  // Two arrays whose shapes are only dynamically known produce the
  // three-case guard of Figure 1.
  std::string C =
      emit("function main\nx = work(rand(3, 3), rand(3, 3));\ndisp(x);\n\n"
           "function c = work(a, b)\nc = a + b;\n",
           "work");
  EXPECT_TRUE(contains(C, "First operand is a scalar")) << C;
  EXPECT_TRUE(contains(C, "Second operand is a scalar")) << C;
  EXPECT_TRUE(contains(C, "Both operands have identical shapes")) << C;
  EXPECT_TRUE(contains(C, "mcrt_check_conformance")) << C;
}

TEST(CEmitter, HeapGroupsGetResizeChecks) {
  // The extent doubles until rand() says stop, so no finite bound exists
  // and the group must stay on the heap with its resize checks.
  std::string C =
      emit("function main\nn = 2;\nwhile rand() < 0.5\nn = n * 2;\nend\n"
           "x = work(n);\ndisp(x);\n\n"
           "function c = work(n)\nc = rand(n, n) + 1;\n",
           "work");
  // Heap slots start null with cap 0 and grow through mcrt_ensure.
  EXPECT_TRUE(contains(C, "= 0; mcrt_size g")) << C;
  EXPECT_TRUE(contains(C, "mcrt_ensure(&g")) << C;
}

TEST(CEmitter, BoundedExtentsPromoteAndElideEnsure) {
  // With n provably in [2, 10], work()'s result is at most 100 elements:
  // the range analysis promotes the group to the stack and the capacity
  // check on the fixed buffer is elided.
  std::string C =
      emit("function main\nn = round(rand() * 8) + 2;\nx = work(n);\n"
           "disp(x);\n\nfunction c = work(n)\nc = rand(n, n) + 1;\n",
           "work");
  EXPECT_TRUE(contains(C, "capacity check elided")) << C;
  EXPECT_FALSE(contains(C, "mcrt_ensure(&g")) << C;
}

TEST(CEmitter, IdentityCopiesAreElided) {
  std::string C = emit("k = 0;\nwhile k < 10\nk = k + 1;\nend\ndisp(k);\n");
  EXPECT_TRUE(contains(C, "identity (coalesced)")) << C;
}

TEST(CEmitter, InPlaceSubsasgnAnnotated) {
  // Scalar subscripts get the inline in-place write with the growing
  // runtime path as fallback.
  std::string C = emit("a = eye(4, 4);\na(6, 1) = 1;\ndisp(a);\n");
  EXPECT_TRUE(contains(C, "\"subsasgn_inplace\"")) << C;
  EXPECT_TRUE(contains(C, "inline scalar L-indexing")) << C;
  EXPECT_TRUE(contains(C, "mcrt_index2")) << C;
}

TEST(CEmitter, SliceSubsasgnUsesBackwardRuntimePath) {
  // Non-scalar subscripts go through the full backward-forming runtime
  // (base and rhs share the REAL intrinsic type, so the slot coalesces).
  std::string C =
      emit("a = rand(6, 6);\na(2:4, 1) = rand(3, 1);\ndisp(a);\n");
  EXPECT_TRUE(contains(C, "sec. 2.3.3.1")) << C;
  EXPECT_TRUE(contains(C, "\"subsasgn_inplace\"")) << C;
}

TEST(CEmitter, InlineScalarSubsref) {
  std::string C = emit("a = rand(4, 4);\nx = a(2, 3);\ndisp(x);\n");
  EXPECT_TRUE(contains(C, "inline scalar R-indexing")) << C;
  EXPECT_TRUE(contains(C, "mcrt_index2")) << C;
  EXPECT_FALSE(contains(C, "\"subsref\"")) << C;
}

TEST(CEmitter, MatrixMultiplyCallsRuntime) {
  std::string C =
      emit("a = rand(3, 3);\nb = rand(3, 3);\nc = a * b;\ndisp(c);\n");
  EXPECT_TRUE(contains(C, "\"matmul\"")) << C;
}

TEST(CEmitter, ScalarTimesMatrixInlines) {
  std::string C = emit("a = rand(3, 3);\nc = 2 * a;\ndisp(c);\n");
  EXPECT_FALSE(contains(C, "mcrt_matmul")) << C;
  EXPECT_TRUE(contains(C, "for (__i = 0; __i <")) << C;
}

TEST(CEmitter, ControlFlowUsesLabels) {
  std::string C = emit("k = 0;\nwhile k < 3\nk = k + 1;\nend\ndisp(k);\n");
  EXPECT_TRUE(contains(C, "goto L")) << C;
  EXPECT_TRUE(contains(C, "mcrt_truth")) << C;
  EXPECT_TRUE(contains(C, "L0:")) << C;
}

TEST(CEmitter, ComplexValuesRouteThroughRuntime) {
  // Complex data never gets inline loops: literals and elementwise ops go
  // through the runtime (which faults with a clear message in mcrt).
  std::string C = emit("z = exp(2i);\nw = z + 1;\ndisp(w);\n");
  EXPECT_TRUE(contains(C, "mcrt_const_complex") ||
              contains(C, "\"op_add\"") || contains(C, "\"exp\""))
      << C;
  EXPECT_FALSE(contains(C, "__s + ")) << C;
}

TEST(CEmitter, ModuleEmissionIncludesAllFunctions) {
  Diagnostics Diags;
  auto P = compileSource("function main\ndisp(f(2));\n\n"
                         "function y = f(x)\ny = x + 1;\n",
                         Diags);
  ASSERT_NE(P, nullptr);
  std::string C =
      emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges());
  EXPECT_TRUE(contains(C, "void mat_main("));
  EXPECT_TRUE(contains(C, "void mat_f("));
  EXPECT_TRUE(contains(C, "#include \"mcrt.h\""));
}

TEST(CEmitter, GroupCommentListsMembers) {
  std::string C = emit("t0 = rand(5, 5);\nt1 = t0 - 1.0;\nt2 = 2.0 .* t1;\n"
                       "disp(t2);\n");
  // The shared buffer's comment lists every member bound to it.
  EXPECT_TRUE(contains(C, "t0.0")) << C;
  EXPECT_TRUE(contains(C, "t1.0")) << C;
  EXPECT_TRUE(contains(C, "t2.0")) << C;
}

} // namespace
