//===- CompileRunTest.cpp - Compile emitted C with cc and run it ----------===//
//
// The strongest back-end validation: emit C for a program, compile it
// against the mcrt runtime with the system C compiler, execute the binary,
// and require byte-identical output with the instrumented VM (which in
// turn matches the AST interpreter). Programs here stay within mcrt's
// scope: real values, up to three dimensions.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace matcoal;

#ifndef MCRT_DIR
#define MCRT_DIR "."
#endif

namespace {

struct CProg {
  const char *Name;
  const char *Source;
};

class CompileRunTest : public ::testing::TestWithParam<CProg> {};

TEST_P(CompileRunTest, EmittedCMatchesVM) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";

  Diagnostics Diags;
  auto P = compileSource(GetParam().Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  // Reference output from the instrumented VM.
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK) << VM.Error;

  // Emit, write, compile, run.
  std::string C =
      emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges());
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/matcoal_gen_" + GetParam().Name + ".c";
  std::string Exe = Dir + "/matcoal_gen_" + GetParam().Name;
  {
    std::ofstream Out(CPath);
    ASSERT_TRUE(Out.good());
    Out << C;
  }
  SubprocessResult CC = ccCompile(CPath, MCRT_DIR, Exe);
  ASSERT_TRUE(CC.ok()) << CC.Diag << "\n" << C;

  SubprocessResult Run = runExecutable(Exe);
  EXPECT_TRUE(Run.ok()) << Run.Diag << "\n" << Run.Output;
  EXPECT_EQ(Run.Output, VM.Output)
      << "generated C diverged from the VM\n" << C;

  std::remove(CPath.c_str());
  std::remove(Exe.c_str());
}

const CProg Programs[] = {
    {"scalars", "a = 2; b = 3.5;\nc = a * b - 1;\ndisp(c);\n"},

    {"example1_chain",
     "t0 = rand(8, 8);\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\n"
     "t3 = tan(t2);\nfprintf('%.6f\\n', sum(sum(abs(t3))));\n"},

    {"loops_and_branches",
     "s = 0;\nfor i = 1:20\nif mod(i, 3) == 0\ns = s + i;\nend\nend\n"
     "disp(s);\nk = 0;\nwhile k * k < 50\nk = k + 1;\nend\ndisp(k);\n"},

    {"matrix_ops",
     "a = [1, 2; 3, 4];\nb = a * a;\ndisp(b);\nc = a';\ndisp(c);\n"
     "d = a + b .* 2;\ndisp(d);\n"},

    {"indexing_and_growth",
     "v = zeros(1, 4);\nfor k = 1:6\nv(k) = k * k;\nend\ndisp(v);\n"
     "a = eye(3, 3);\na(5, 2) = 7;\ndisp(a(5, 2));\ndisp(size(a, 1));\n"},

    {"slices",
     "a = [1, 2, 3; 4, 5, 6; 7, 8, 9];\ndisp(a(:, 2));\ndisp(a(2, :));\n"
     "a(2:3, 1) = [40; 70];\ndisp(a);\ndisp(a(1:2, 2:3));\n"},

    {"functions_and_solve",
     "function main\nA = [4, 1; 1, 3];\nb = [1; 2];\nx = A \\ b;\n"
     "fprintf('%.6f %.6f\\n', x(1), x(2));\ndisp(peak([3, 9, 4]));\n\n"
     "function m = peak(v)\nm = max(v);\n"},

    {"rand_stream_matches",
     "x = rand(2, 3);\nfprintf('%.12f ', x);\nfprintf('\\n');\n"
     "y = rand();\nfprintf('%.12f\\n', y);\n"},

    {"heat_kernel",
     "n = 16;\nu = zeros(1, n);\nu(8) = 1;\nfor t = 1:12\nv = u;\n"
     "for k = 2:n-1\nv(k) = u(k) + 0.4 * (u(k-1) - 2 * u(k) + u(k+1));\n"
     "end\nu = v;\nend\nfprintf('%.6f ', u);\nfprintf('\\n');\n"},

    {"reductions_and_ranges",
     "v = 1:10;\ndisp(sum(v));\ndisp(prod(v(1:4)));\nw = 10:-2:1;\n"
     "disp(w);\ndisp(min(w));\n[mx, ix] = max([2, 9, 4]);\n"
     "fprintf('%d %d\\n', mx, ix);\n"},

    {"concat",
     "a = [1, 2];\nb = [a, 3, 4];\nc = [b; b];\ndisp(c);\n"},

    {"display_named",
     "x = 41\ny = [1, 2; 3, 4]\n"},

    {"three_dimensional",
     "a = zeros(2, 3, 2);\na(1, 2, 2) = 7;\na(2, 3, 1) = 5;\n"
     "disp(a(1, 2, 2));\ndisp(numel(a));\ndisp(size(a, 3));\n"
     "disp(sum(sum(sum(a))));\n"},

    {"three_d_slices",
     "n = 4;\nh = zeros(n, n, n);\ne = ones(n, n, n);\n"
     "h(1:n, 1:n-1, 1:n-1) = h(1:n, 1:n-1, 1:n-1) + "
     "0.5 * (e(1:n, 1:n-1, 2:n) - e(1:n, 1:n-1, 1:n-1));\n"
     "fprintf('%.4f %.4f\\n', h(1, 1, 1), sum(sum(sum(h .* h))));\n"},

    {"switch_statement",
     "for k = 1:4\nswitch k\ncase 2\ndisp('two');\ncase 4\n"
     "disp('four');\notherwise\ndisp(k);\nend\nend\n"},

    {"tiny_constants",
     "tol = 1e-9;\nx = 2.5e-7;\nfprintf('%g %g %g\\n', tol, x, "
     "tol * 2);\n"},
};

INSTANTIATE_TEST_SUITE_P(Programs, CompileRunTest,
                         ::testing::ValuesIn(Programs),
                         [](const ::testing::TestParamInfo<CProg> &Info) {
                           return Info.param.Name;
                         });

} // namespace
