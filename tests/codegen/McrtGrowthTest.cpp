//===- McrtGrowthTest.cpp - mcrt_ensure growth-policy tests ---------------===//
//
// Links the mcrt runtime directly (no cc round trip) and asserts the
// geometric-growth contract: a growth factor of at least 1.5x and the
// amortized-O(1) append bound it buys -- n one-element appends copy O(n)
// elements total across O(log n) reallocations.
//
//===----------------------------------------------------------------------===//

#include "mcrt.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace {

TEST(McrtGrowth, AppendLoopCopiesLinearlyManyElements) {
  mcrt_reset_growth_stats();
  double *Buf = nullptr;
  mcrt_size Cap = 0;
  const mcrt_size N = 100000;
  for (mcrt_size K = 1; K <= N; ++K) {
    mcrt_ensure(&Buf, &Cap, K);
    Buf[K - 1] = static_cast<double>(K);
  }
  mcrt_growth_stats S = mcrt_get_growth_stats();
  // Geometric growth: total elements moved is bounded by the sum of the
  // old capacities at each doubling, a geometric series < 2n. A linear
  // (constant-increment) policy would copy Theta(n^2) -- over 10^9 here.
  EXPECT_LE(S.copied_elems, 2 * N);
  // ... across logarithmically many reallocations.
  EXPECT_LE(S.reallocs, 20);
  EXPECT_GE(S.reallocs, 2);
  // The data survived every move.
  for (mcrt_size K = 1; K <= N; ++K)
    ASSERT_EQ(Buf[K - 1], static_cast<double>(K));
  std::free(Buf);
}

TEST(McrtGrowth, GrowthFactorIsAtLeastOnePointFive) {
  double *Buf = nullptr;
  mcrt_size Cap = 0;
  mcrt_size Prev = 0;
  std::vector<mcrt_size> Caps;
  for (mcrt_size K = 1; K <= 5000; ++K) {
    mcrt_ensure(&Buf, &Cap, K);
    if (Cap != Prev) {
      Caps.push_back(Cap);
      Prev = Cap;
    }
  }
  ASSERT_GE(Caps.size(), 3u);
  for (size_t I = 1; I < Caps.size(); ++I)
    EXPECT_GE(static_cast<double>(Caps[I]),
              1.5 * static_cast<double>(Caps[I - 1]))
        << "growth step " << I << " below the amortization threshold";
  std::free(Buf);
}

TEST(McrtGrowth, EnsureWithinCapacityDoesNotRealloc) {
  double *Buf = nullptr;
  mcrt_size Cap = 0;
  mcrt_ensure(&Buf, &Cap, 100);
  double *P = Buf;
  mcrt_size C = Cap;
  mcrt_reset_growth_stats();
  for (mcrt_size K = 1; K <= C; ++K)
    mcrt_ensure(&Buf, &Cap, K);
  EXPECT_EQ(Buf, P);
  EXPECT_EQ(Cap, C);
  EXPECT_EQ(mcrt_get_growth_stats().reallocs, 0);
  std::free(Buf);
}

TEST(McrtGrowth, SameShapePredicate) {
  EXPECT_TRUE(mcrt_same_shape(3, 4, 1, 3, 4, 1));
  EXPECT_FALSE(mcrt_same_shape(3, 4, 1, 4, 3, 1));
  EXPECT_FALSE(mcrt_same_shape(3, 4, 1, 3, 4, 2));
  EXPECT_FALSE(mcrt_same_shape(1, 1, 1, 3, 4, 1));
  EXPECT_TRUE(mcrt_same_shape(0, 0, 1, 0, 0, 1));
}

} // namespace
