//===- LegalityAgreementTest.cpp - Cross-tier legality agreement ----------===//
//
// The regression test PR 2 asked for when it flagged the drift risk of
// the VM and the C emitter each keeping private in-place predicates: both
// tiers now route every destructive-storage question through one
// InPlaceLegality oracle, and this test proves they agree on every
// verdict. Each suite benchmark is compiled once; then each tier queries
// its OWN oracle instance (so the decision streams cannot mix through the
// memo) and the two journals are compared site by site:
//
//  * "subsasgn-inplace" verdicts must match exactly -- both tiers decide
//    the same question against the same GCTD plan.
//  * The VM's "destructive" gate and the emitter's "fusion-candidate"
//    gate must match on the destructive opcode family (Add, Sub, ElemMul,
//    ElemRDiv) -- the family the two tiers' old private predicates
//    covered and the single place their policies could have drifted.
//
// Driving the VM through a fresh oracle must also leave program behavior
// untouched: its output is compared against the driver's own runStatic.
//
//===----------------------------------------------------------------------===//

#include "analysis/InPlaceLegality.h"
#include "bench/programs/Programs.h"
#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

using namespace matcoal;

namespace {

/// A comparable site identity across tiers: journals carry no pointers,
/// so sites line up by (function, line, opcode). Verdicts are aggregated
/// per key as a (proven, refused) count pair, making the comparison
/// robust to several sites sharing one source line.
using SiteKey = std::tuple<std::string, unsigned, Opcode>;
struct VerdictTally {
  unsigned Proven = 0;
  unsigned Refused = 0;
  bool operator==(const VerdictTally &O) const {
    return Proven == O.Proven && Refused == O.Refused;
  }
};

std::map<SiteKey, VerdictTally>
collect(const InPlaceLegality &Oracle, const std::string &Query,
        bool (*OpFilter)(Opcode) = nullptr) {
  std::map<SiteKey, VerdictTally> Out;
  for (const InPlaceLegality::Decision &D : Oracle.journal()) {
    if (D.Query != Query)
      continue;
    if (OpFilter && !OpFilter(D.Op))
      continue;
    VerdictTally &T = Out[{D.Func, D.Line, D.Op}];
    ++(D.Proven ? T.Proven : T.Refused);
  }
  return Out;
}

std::string describe(const SiteKey &K) {
  return std::get<0>(K) + " line " + std::to_string(std::get<1>(K)) + " (" +
         opcodeName(std::get<2>(K)) + ")";
}

/// Asserts that every site present in both journals carries the same
/// verdicts, and returns how many sites the tiers shared.
unsigned expectAgreement(const std::map<SiteKey, VerdictTally> &VMSide,
                         const std::map<SiteKey, VerdictTally> &EmitSide,
                         const std::string &What) {
  unsigned Shared = 0;
  for (const auto &[Key, VMTally] : VMSide) {
    auto It = EmitSide.find(Key);
    if (It == EmitSide.end())
      continue;
    ++Shared;
    EXPECT_EQ(VMTally.Proven, It->second.Proven)
        << What << " diverged at " << describe(Key);
    EXPECT_EQ(VMTally.Refused, It->second.Refused)
        << What << " diverged at " << describe(Key);
  }
  return Shared;
}

class LegalityAgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LegalityAgreementTest, TiersShareOneVerdictStream) {
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  ASSERT_NE(Prog, nullptr);
  Diagnostics Diags;
  auto P = compileSource(Prog->Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_EQ(P->Level, DegradeLevel::Full) << Diags.str();

  // Tier 1: the VM's destructive kernels, priming a fresh oracle.
  InPlaceLegality VMOracle(*P->TI, P->RA.get(), P->AA.get());
  VM Machine(P->module(), ExecModel::Static, P->GCTDPlans);
  Machine.setLegality(&VMOracle, &P->GCTDPlans);
  ExecResult R = Machine.run(P->entryName());
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_FALSE(VMOracle.journal().empty());

  // Swapping in the fresh oracle must not change what the program does.
  ExecResult Reference = P->runStatic();
  ASSERT_TRUE(Reference.OK) << Reference.Error;
  EXPECT_EQ(R.Output, Reference.Output);

  // Tier 2: the C emitter's fusion legality, against its own oracle.
  InPlaceLegality EmitOracle(*P->TI, P->RA.get(), P->AA.get());
  std::string C = emitModuleC(P->module(), P->GCTDPlans, *P->TI,
                              P->RA.get(), /*Obs=*/nullptr, CEmitOptions(),
                              &EmitOracle);
  ASSERT_FALSE(C.empty());
  EXPECT_FALSE(EmitOracle.journal().empty());

  // The destructive family: the VM's kernel gate vs the emitter's fusion
  // admission. Every benchmark exercises at least one such site.
  unsigned Shared = expectAgreement(
      collect(VMOracle, "destructive", InPlaceLegality::destructiveOp),
      collect(EmitOracle, "fusion-candidate",
              InPlaceLegality::destructiveOp),
      "destructive/fusion-candidate");
  EXPECT_GT(Shared, 0u) << "no shared destructive sites in " << GetParam();

  // In-place subsasgn: both tiers ask the identical question of the
  // identical plan; any shared site must agree (not every benchmark has
  // indexed assignments, so zero shared sites is acceptable here).
  expectAgreement(collect(VMOracle, "subsasgn-inplace"),
                  collect(EmitOracle, "subsasgn-inplace"),
                  "subsasgn-inplace");
}

INSTANTIATE_TEST_SUITE_P(
    Suite, LegalityAgreementTest,
    ::testing::Values("adpt", "capr", "clos", "crni", "diff", "dich",
                      "edit", "fdtd", "fiff", "nb1d", "nb3d"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

} // namespace
