//===- InterpTest.cpp - AST interpreter unit tests ------------------------===//

#include "interp/Interp.h"

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

InterpResult run(const std::string &Src, std::uint64_t Seed = 1) {
  Diagnostics Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  Interpreter I(*P, Seed);
  return I.run();
}

TEST(Interp, BasicOutput) {
  InterpResult R = run("x = 2 + 3;\ndisp(x);\n");
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "5\n");
}

TEST(Interp, DisplayUsesVariableName) {
  InterpResult R = run("abc = 7\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "abc =\n7\n");
}

TEST(Interp, ExpressionStatementDisplaysAns) {
  InterpResult R = run("1 + 1\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "ans =\n2\n");
}

TEST(Interp, ValueSemanticsOnAssignment) {
  // b must be an independent copy of a.
  InterpResult R = run("a = [1, 2];\nb = a;\nb(1) = 9;\ndisp(a);\n"
                       "disp(b);\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "  1  2\n  9  2\n");
}

TEST(Interp, FunctionArgumentsAreCopies) {
  InterpResult R = run("function main\nv = [1, 2, 3];\nw = bump(v);\n"
                       "disp(v);\ndisp(w);\n\n"
                       "function v = bump(v)\nv(1) = 99;\n");
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "  1  2  3\n  99  2  3\n");
}

TEST(Interp, ForOverMatrixIteratesColumns) {
  InterpResult R = run("m = [1, 3; 2, 4];\nfor c = m\ndisp(c');\nend\n");
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "  1  2\n  3  4\n");
}

TEST(Interp, ForOverColumnVectorRunsOnce) {
  // MATLAB: for v = columnvector binds the whole column once.
  InterpResult R = run("count = 0;\nfor v = [1; 2; 3]\n"
                       "count = count + 1;\nend\ndisp(count);\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "1\n");
}

TEST(Interp, WhileBreakContinue) {
  InterpResult R = run("k = 0;\ns = 0;\nwhile 1\nk = k + 1;\n"
                       "if k == 3\ncontinue;\nend\nif k > 5\nbreak;\nend\n"
                       "s = s + k;\nend\ndisp(s);\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "12\n"); // 1+2+4+5.
}

TEST(Interp, ReturnExitsFunction) {
  InterpResult R = run("function main\ndisp(f(1));\ndisp(f(-1));\n\n"
                       "function y = f(x)\ny = 0;\nif x < 0\nreturn;\nend\n"
                       "y = 1;\n");
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "1\n0\n");
}

TEST(Interp, MissingOutputIsError) {
  InterpResult R = run("function main\ndisp(f(1));\n\n"
                       "function y = f(x)\nz = x;\n");
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("not assigned"), std::string::npos);
}

TEST(Interp, UndefinedVariableIsError) {
  InterpResult R = run("disp(qqq);\n");
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("undefined"), std::string::npos);
}

TEST(Interp, StepBudgetGuardsInfiniteLoops) {
  Diagnostics Diags;
  auto P = parseProgram("while 1\nx = 1;\nend\n", Diags);
  Interpreter I(*P, 1);
  I.setStepBudget(1000);
  InterpResult R = I.run();
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(Interp, SeedControlsRandStream) {
  InterpResult A = run("fprintf('%.9f', rand());\n", 11);
  InterpResult B = run("fprintf('%.9f', rand());\n", 22);
  InterpResult A2 = run("fprintf('%.9f', rand());\n", 11);
  EXPECT_NE(A.Output, B.Output);
  EXPECT_EQ(A.Output, A2.Output);
}

TEST(Interp, SwitchFallsToOtherwise) {
  InterpResult R = run("x = 5;\nswitch x\ncase 1\ndisp('a');\n"
                       "otherwise\ndisp('b');\nend\n");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, "b\n");
}

TEST(Interp, EndInNestedIndexContexts) {
  InterpResult R = run("a = [1, 2, 3, 4];\nb = [10, 20];\n"
                       "disp(a(end - b(end) / 20));\n");
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "3\n"); // a(end - b(end)/20) = a(4 - 1) = a(3).
}

} // namespace
