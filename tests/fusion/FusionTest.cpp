//===- FusionTest.cpp - Loop-fusion differential tests --------------------===//
//
// The fusion escape hatch must be invisible: for every benchmark-suite
// program and for the aliasing corner cases, stdout must be byte-identical
// across (a) the fused and --no-fuse configurations and (b) the execution
// tiers -- instrumented VM, AST interpreter, and cc-compiled emitted C.
// Run with `ctest -L fusion`.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "native/NativeEngine.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace matcoal;

#ifndef MCRT_DIR
#define MCRT_DIR "."
#endif

namespace {

/// Compiles \p CSource with the system compiler and runs it; returns
/// stdout. Any failure is reported through gtest and yields "".
std::string ccRun(const std::string &CSource, const std::string &Name) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/matcoal_fuse_" + Name + ".c";
  std::string Exe = Dir + "/matcoal_fuse_" + Name;
  {
    std::ofstream Out(CPath);
    EXPECT_TRUE(Out.good());
    Out << CSource;
  }
  SubprocessResult CC = ccCompile(CPath, MCRT_DIR, Exe);
  EXPECT_TRUE(CC.ok()) << "cc failed for " << Name << ": " << CC.Diag
                       << "\n" << CSource;
  SubprocessResult Run = runExecutable(Exe);
  EXPECT_TRUE(Run.ok()) << Name << " failed: " << Run.Diag << "\n"
                        << Run.Output;
  std::remove(CPath.c_str());
  std::remove(Exe.c_str());
  return Run.Output;
}

std::string emitC(const CompiledProgram &P, bool Fuse) {
  CEmitOptions Opts;
  Opts.Fuse = Fuse;
  return emitModuleC(P.module(), P.GCTDPlans, P.types(), P.ranges(),
                     nullptr, Opts);
}

/// The full differential matrix for one source: fused VM output is the
/// reference; --no-fuse VM, both emitted-C variants, and (optionally) the
/// interpreter must all reproduce it byte for byte.
void expectAllTiersAgree(const std::string &Source, const std::string &Name,
                         bool WithInterp = true) {
  Diagnostics Diags;
  auto Fused = compileSource(Source, Diags);
  ASSERT_NE(Fused, nullptr) << Diags.str();
  ExecResult Ref = Fused->runStatic();
  ASSERT_TRUE(Ref.OK) << Ref.Error;

  CompileOptions NoFuseOpts;
  NoFuseOpts.NoFuse = true;
  Diagnostics Diags2;
  auto Unfused = compileSource(Source, Diags2, NoFuseOpts);
  ASSERT_NE(Unfused, nullptr) << Diags2.str();
  ExecResult Un = Unfused->runStatic();
  ASSERT_TRUE(Un.OK) << Un.Error;
  EXPECT_EQ(Un.Output, Ref.Output)
      << Name << ": --no-fuse diverged from the fused static model";

  if (WithInterp) {
    InterpResult I = Fused->runInterp();
    ASSERT_TRUE(I.OK) << I.Error;
    EXPECT_EQ(I.Output, Ref.Output)
        << Name << ": interpreter diverged from the fused static model";
  }

  if (!ccAvailable())
    return;
  std::string FusedC = emitC(*Fused, /*Fuse=*/true);
  // The mcrt back end has no complex representation: a program that
  // materializes a complex constant traps at run time in BOTH the fused
  // and unfused translations (a pre-existing, documented limitation that
  // is independent of fusion), so the cc legs carry no signal for it.
  // The VM and interpreter legs above still cover such programs.
  if (FusedC.find("mcrt_const_complex") != std::string::npos)
    return;
  EXPECT_EQ(ccRun(FusedC, Name + "_fused"), Ref.Output)
      << Name << ": fused emitted C diverged";
  EXPECT_EQ(ccRun(emitC(*Fused, /*Fuse=*/false), Name + "_nofuse"),
            Ref.Output)
      << Name << ": unfused emitted C diverged";
}

class FusionSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionSuiteTest, AllTiersAgreeFusedAndUnfused) {
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  ASSERT_NE(Prog, nullptr);
  // The interpreter oracle sits out the two long-running programs, as in
  // the integration suite; their VM-vs-interp agreement is covered there.
  bool WithInterp = GetParam() != "fiff" && GetParam() != "crni";
  expectAllTiersAgree(Prog->Source, GetParam(), WithInterp);
}

INSTANTIATE_TEST_SUITE_P(
    Fusion, FusionSuiteTest,
    ::testing::Values("adpt", "capr", "clos", "crni", "diff", "dich",
                      "edit", "fdtd", "fiff", "nb1d", "nb3d"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

// --- Aliasing corner cases. The destructive layer and the fused loops
// must never change values when results overlap their operands.

TEST(FusionAliasing, ResultAliasesSecondOperand) {
  // Y = X + Y: the destination is the second operand; destructive
  // formation must read element i before overwriting it.
  expectAllTiersAgree("x = rand(40, 40);\n"
                      "y = rand(40, 40);\n"
                      "y = x + y;\n"
                      "disp(sum(sum(y)));\n"
                      "y = 2 .* y - x;\n"
                      "disp(sum(sum(y)));\n",
                      "alias_y_eq_x_plus_y");
}

TEST(FusionAliasing, TransposeIsNotDestructive) {
  // X = X': a permutation is NOT elementwise-identity -- element (i, j)
  // of the result reads element (j, i) of the operand, so no in-place or
  // buffer-stealing form may apply. A destructive transpose would corrupt
  // every off-diagonal element.
  expectAllTiersAgree("x = [1, 2, 3; 4, 5, 6];\n"
                      "x = x';\n"
                      "disp(x);\n"
                      "a = rand(30, 30);\n"
                      "a = a';\n"
                      "disp(sum(sum(a .* a)));\n",
                      "alias_transpose");
}

TEST(FusionAliasing, FusedChainWithLiveOutIntermediate) {
  // t is consumed by the chain AND displayed afterwards: fusion must not
  // elide its store. A bug here silently prints stale or garbage data.
  expectAllTiersAgree("a = rand(8, 8);\n"
                      "t = a + 1;\n"
                      "b = 2 .* t - a;\n"
                      "disp(sum(sum(b)));\n"
                      "disp(sum(sum(t)));\n",
                      "alias_live_out");
}

TEST(FusionAliasing, SelfOperandChain) {
  // x appears on both sides throughout a fusable chain.
  expectAllTiersAgree("x = rand(16, 16);\n"
                      "x = x .* x + x;\n"
                      "x = x - 0.5 .* x;\n"
                      "disp(sum(sum(x)));\n",
                      "alias_self_chain");
}

// --- Reduction-fusion legality corners. Cross-loop fusion may pull
// sum/prod-style reductions into elementwise regions only when the trip
// counts agree and no loop in the region clobbers a leaf a later
// consumer (or the reduction itself) still reads. Whatever the planner
// decides, the outputs must stay byte-identical across every tier.

TEST(ReductionFusion, TripCountDisagreement) {
  // Two elementwise chains over DIFFERENT extents, each feeding its own
  // reduction: regions with disagreeing trip counts must never merge,
  // and the split must not perturb either sum.
  expectAllTiersAgree("a = rand(1, 300);\n"
                      "b = rand(1, 200);\n"
                      "x = a .* 2 + 1;\n"
                      "y = b .* 3 - 1;\n"
                      "s = sum(x) + sum(y);\n"
                      "disp(s);\n",
                      "red_trip_disagreement");
}

TEST(ReductionFusion, ReductionFeedsElementwiseConsumer) {
  // The reduced scalar feeds a later elementwise loop over the same
  // leaf: the consumer must observe the COMPLETE sum, so the reduction
  // can root a fused region but cannot fuse INTO its own consumer.
  expectAllTiersAgree("x = rand(1, 500);\n"
                      "s = sum(x .* x);\n"
                      "y = x .* s + s;\n"
                      "disp(sum(y));\n",
                      "red_feeds_elementwise");
}

TEST(ReductionFusion, CrossLoopClobberOfLiveLeaf) {
  // The destructive update of `a` sits between a reduction over `a` and
  // a consumer of that reduction; a cross-loop region that reordered or
  // merged across the clobber would read updated elements into `s`.
  expectAllTiersAgree("a = rand(1, 400);\n"
                      "s = sum(a .* a);\n"
                      "a = a + 1;\n"
                      "t = sum(a) + s;\n"
                      "disp(s);\n"
                      "disp(t);\n",
                      "red_cross_loop_clobber");
}

// --- Threaded kernels. Partitioned loops are identity-indexed pure
// writes and reductions stay serial, so output is byte-identical at any
// worker count -- proven here across the VM, the emitted-C tier (mcrt's
// pool via $MATCOAL_THREADS), and the in-process native tier.

void expectThreadsAgree(const std::string &Source, const std::string &Name) {
  Diagnostics D1;
  CompileOptions O1;
  O1.Threads = 1;
  auto P1 = compileSource(Source, D1, O1);
  ASSERT_NE(P1, nullptr) << D1.str();
  ExecResult R1 = P1->runStatic();
  ASSERT_TRUE(R1.OK) << R1.Error;

  Diagnostics D4;
  CompileOptions O4;
  O4.Threads = 4;
  auto P4 = compileSource(Source, D4, O4);
  ASSERT_NE(P4, nullptr) << D4.str();
  ExecResult R4 = P4->runStatic();
  ASSERT_TRUE(R4.OK) << R4.Error;
  EXPECT_EQ(R4.Output, R1.Output)
      << Name << ": 4-thread VM diverged from 1-thread";
  EXPECT_GT(R4.ThreadChunks, 0u)
      << Name << ": no parallel region ran at 4 threads";
  EXPECT_EQ(R1.ThreadChunks, 0u)
      << Name << ": 1-thread run dispatched parallel regions";

  if (!ccAvailable())
    return;
  // The external-cc tier: the emitted main() resolves $MATCOAL_THREADS
  // through mcrt_set_threads(0), the same rule resolveThreads applies.
  ASSERT_EQ(setenv("MATCOAL_THREADS", "4", 1), 0);
  std::string CcOut = ccRun(emitC(*P4, /*Fuse=*/true), Name + "_t4");
  ASSERT_EQ(unsetenv("MATCOAL_THREADS"), 0);
  EXPECT_EQ(CcOut, R1.Output)
      << Name << ": 4-thread emitted C diverged from 1-thread VM";

  // The in-process native tier at 4 threads (isolated cache directory so
  // this test never perturbs the shared per-user cache).
  NativeEngine Engine(::testing::TempDir() + "/fusion_threads_cache");
  ExecResult RN = Engine.run(*P4);
  ASSERT_TRUE(RN.OK) << RN.Error;
  EXPECT_EQ(RN.Output, R1.Output)
      << Name << ": 4-thread native tier diverged from 1-thread VM";
}

TEST(ThreadedKernels, ElementwiseChainByteIdentical) {
  // 200x200 = 40000 elements: past ParMinElems, so the elementwise and
  // destructive kernels partition across the pool.
  expectThreadsAgree("a = rand(200, 200);\n"
                     "b = a .* 2 + 1;\n"
                     "c = b .* a - 0.5;\n"
                     "c = c + b;\n"
                     "disp(sum(sum(c)));\n",
                     "threads_elementwise");
}

TEST(ThreadedKernels, MatmulAndReductionByteIdentical) {
  // Column-partitioned matmul keeps the serial P-inner accumulation
  // order per column; the reductions stay serial by contract.
  expectThreadsAgree("a = rand(160, 160);\n"
                     "m = a * a;\n"
                     "s = sum(sum(m));\n"
                     "t = sum(sum(a .* a + m));\n"
                     "disp(s);\n"
                     "disp(t);\n",
                     "threads_matmul");
}

TEST(ThreadedKernels, SmallArraysStaySerial) {
  // Below ParMinElems nothing partitions: chunks stay zero even at 4
  // threads, pinning the threshold gate.
  Diagnostics Diags;
  CompileOptions Opts;
  Opts.Threads = 4;
  auto P = compileSource("a = rand(20, 20);\n"
                         "b = a .* 2 + 1;\n"
                         "disp(sum(sum(b)));\n",
                         Diags, Opts);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult R = P->runStatic();
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.ThreadChunks, 0u)
      << "sub-threshold kernels must not dispatch parallel regions";
}

// --- The optimization must actually fire across the suite (the paper's
// benchmarks are elementwise-heavy): both the emitter's fusion regions
// and the VM's destructive executions show up on most programs.

TEST(FusionCoverage, CountersFireAcrossSuite) {
  unsigned FusionPrograms = 0, InPlacePrograms = 0, PoolPrograms = 0;
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    Observer Obs;
    CompileOptions Opts;
    Opts.Obs = &Obs;
    Diagnostics Diags;
    auto P = compileSource(Prog.Source, Diags, Opts);
    ASSERT_NE(P, nullptr) << Prog.Name << ": " << Diags.str();
    (void)emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges(),
                      &Obs);
    ExecResult R = P->runStatic();
    ASSERT_TRUE(R.OK) << Prog.Name << ": " << R.Error;
    FusionPrograms += Obs.Stats.get("codegen.fusion.regions") > 0;
    InPlacePrograms += Obs.Stats.get("vm.inplace.hits") > 0;
    PoolPrograms += Obs.Stats.get("rt.pool.reuses") > 0;
  }
  EXPECT_GE(FusionPrograms, 6u)
      << "loop fusion fires on too few suite programs";
  EXPECT_GE(InPlacePrograms, 6u)
      << "destructive execution fires on too few suite programs";
  EXPECT_GE(PoolPrograms, 1u) << "the buffer pool is never reused";
}

} // namespace
