//===- FusionTest.cpp - Loop-fusion differential tests --------------------===//
//
// The fusion escape hatch must be invisible: for every benchmark-suite
// program and for the aliasing corner cases, stdout must be byte-identical
// across (a) the fused and --no-fuse configurations and (b) the execution
// tiers -- instrumented VM, AST interpreter, and cc-compiled emitted C.
// Run with `ctest -L fusion`.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace matcoal;

#ifndef MCRT_DIR
#define MCRT_DIR "."
#endif

namespace {

/// Compiles \p CSource with the system compiler and runs it; returns
/// stdout. Any failure is reported through gtest and yields "".
std::string ccRun(const std::string &CSource, const std::string &Name) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/matcoal_fuse_" + Name + ".c";
  std::string Exe = Dir + "/matcoal_fuse_" + Name;
  {
    std::ofstream Out(CPath);
    EXPECT_TRUE(Out.good());
    Out << CSource;
  }
  SubprocessResult CC = ccCompile(CPath, MCRT_DIR, Exe);
  EXPECT_TRUE(CC.ok()) << "cc failed for " << Name << ": " << CC.Diag
                       << "\n" << CSource;
  SubprocessResult Run = runExecutable(Exe);
  EXPECT_TRUE(Run.ok()) << Name << " failed: " << Run.Diag << "\n"
                        << Run.Output;
  std::remove(CPath.c_str());
  std::remove(Exe.c_str());
  return Run.Output;
}

std::string emitC(const CompiledProgram &P, bool Fuse) {
  CEmitOptions Opts;
  Opts.Fuse = Fuse;
  return emitModuleC(P.module(), P.GCTDPlans, P.types(), P.ranges(),
                     nullptr, Opts);
}

/// The full differential matrix for one source: fused VM output is the
/// reference; --no-fuse VM, both emitted-C variants, and (optionally) the
/// interpreter must all reproduce it byte for byte.
void expectAllTiersAgree(const std::string &Source, const std::string &Name,
                         bool WithInterp = true) {
  Diagnostics Diags;
  auto Fused = compileSource(Source, Diags);
  ASSERT_NE(Fused, nullptr) << Diags.str();
  ExecResult Ref = Fused->runStatic();
  ASSERT_TRUE(Ref.OK) << Ref.Error;

  CompileOptions NoFuseOpts;
  NoFuseOpts.NoFuse = true;
  Diagnostics Diags2;
  auto Unfused = compileSource(Source, Diags2, NoFuseOpts);
  ASSERT_NE(Unfused, nullptr) << Diags2.str();
  ExecResult Un = Unfused->runStatic();
  ASSERT_TRUE(Un.OK) << Un.Error;
  EXPECT_EQ(Un.Output, Ref.Output)
      << Name << ": --no-fuse diverged from the fused static model";

  if (WithInterp) {
    InterpResult I = Fused->runInterp();
    ASSERT_TRUE(I.OK) << I.Error;
    EXPECT_EQ(I.Output, Ref.Output)
        << Name << ": interpreter diverged from the fused static model";
  }

  if (!ccAvailable())
    return;
  std::string FusedC = emitC(*Fused, /*Fuse=*/true);
  // The mcrt back end has no complex representation: a program that
  // materializes a complex constant traps at run time in BOTH the fused
  // and unfused translations (a pre-existing, documented limitation that
  // is independent of fusion), so the cc legs carry no signal for it.
  // The VM and interpreter legs above still cover such programs.
  if (FusedC.find("mcrt_const_complex") != std::string::npos)
    return;
  EXPECT_EQ(ccRun(FusedC, Name + "_fused"), Ref.Output)
      << Name << ": fused emitted C diverged";
  EXPECT_EQ(ccRun(emitC(*Fused, /*Fuse=*/false), Name + "_nofuse"),
            Ref.Output)
      << Name << ": unfused emitted C diverged";
}

class FusionSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionSuiteTest, AllTiersAgreeFusedAndUnfused) {
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  ASSERT_NE(Prog, nullptr);
  // The interpreter oracle sits out the two long-running programs, as in
  // the integration suite; their VM-vs-interp agreement is covered there.
  bool WithInterp = GetParam() != "fiff" && GetParam() != "crni";
  expectAllTiersAgree(Prog->Source, GetParam(), WithInterp);
}

INSTANTIATE_TEST_SUITE_P(
    Fusion, FusionSuiteTest,
    ::testing::Values("adpt", "capr", "clos", "crni", "diff", "dich",
                      "edit", "fdtd", "fiff", "nb1d", "nb3d"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

// --- Aliasing corner cases. The destructive layer and the fused loops
// must never change values when results overlap their operands.

TEST(FusionAliasing, ResultAliasesSecondOperand) {
  // Y = X + Y: the destination is the second operand; destructive
  // formation must read element i before overwriting it.
  expectAllTiersAgree("x = rand(40, 40);\n"
                      "y = rand(40, 40);\n"
                      "y = x + y;\n"
                      "disp(sum(sum(y)));\n"
                      "y = 2 .* y - x;\n"
                      "disp(sum(sum(y)));\n",
                      "alias_y_eq_x_plus_y");
}

TEST(FusionAliasing, TransposeIsNotDestructive) {
  // X = X': a permutation is NOT elementwise-identity -- element (i, j)
  // of the result reads element (j, i) of the operand, so no in-place or
  // buffer-stealing form may apply. A destructive transpose would corrupt
  // every off-diagonal element.
  expectAllTiersAgree("x = [1, 2, 3; 4, 5, 6];\n"
                      "x = x';\n"
                      "disp(x);\n"
                      "a = rand(30, 30);\n"
                      "a = a';\n"
                      "disp(sum(sum(a .* a)));\n",
                      "alias_transpose");
}

TEST(FusionAliasing, FusedChainWithLiveOutIntermediate) {
  // t is consumed by the chain AND displayed afterwards: fusion must not
  // elide its store. A bug here silently prints stale or garbage data.
  expectAllTiersAgree("a = rand(8, 8);\n"
                      "t = a + 1;\n"
                      "b = 2 .* t - a;\n"
                      "disp(sum(sum(b)));\n"
                      "disp(sum(sum(t)));\n",
                      "alias_live_out");
}

TEST(FusionAliasing, SelfOperandChain) {
  // x appears on both sides throughout a fusable chain.
  expectAllTiersAgree("x = rand(16, 16);\n"
                      "x = x .* x + x;\n"
                      "x = x - 0.5 .* x;\n"
                      "disp(sum(sum(x)));\n",
                      "alias_self_chain");
}

// --- The optimization must actually fire across the suite (the paper's
// benchmarks are elementwise-heavy): both the emitter's fusion regions
// and the VM's destructive executions show up on most programs.

TEST(FusionCoverage, CountersFireAcrossSuite) {
  unsigned FusionPrograms = 0, InPlacePrograms = 0, PoolPrograms = 0;
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    Observer Obs;
    CompileOptions Opts;
    Opts.Obs = &Obs;
    Diagnostics Diags;
    auto P = compileSource(Prog.Source, Diags, Opts);
    ASSERT_NE(P, nullptr) << Prog.Name << ": " << Diags.str();
    (void)emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges(),
                      &Obs);
    ExecResult R = P->runStatic();
    ASSERT_TRUE(R.OK) << Prog.Name << ": " << R.Error;
    FusionPrograms += Obs.Stats.get("codegen.fusion.regions") > 0;
    InPlacePrograms += Obs.Stats.get("vm.inplace.hits") > 0;
    PoolPrograms += Obs.Stats.get("rt.pool.reuses") > 0;
  }
  EXPECT_GE(FusionPrograms, 6u)
      << "loop fusion fires on too few suite programs";
  EXPECT_GE(InPlacePrograms, 6u)
      << "destructive execution fires on too few suite programs";
  EXPECT_GE(PoolPrograms, 1u) << "the buffer pool is never reused";
}

} // namespace
