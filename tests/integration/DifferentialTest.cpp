//===- DifferentialTest.cpp - interpreter vs VM models --------------------===//
//
// The interpreter is the semantic oracle: for every program, the mcc-model
// VM, the GCTD static-model VM and the no-coalescing VM must all produce
// byte-identical output. This is the strongest end-to-end check that the
// optimizer (interference + coalescing + in-place execution) preserves
// program meaning.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

struct Prog {
  const char *Name;
  const char *Source;
};

class DifferentialTest : public ::testing::TestWithParam<Prog> {};

TEST_P(DifferentialTest, AllExecutionPathsAgree) {
  Diagnostics Diags;
  auto P = compileSource(GetParam().Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  InterpResult Oracle = P->runInterp();
  ASSERT_TRUE(Oracle.OK) << "interp: " << Oracle.Error;

  ExecResult Mcc = P->runMcc();
  ASSERT_TRUE(Mcc.OK) << "mcc: " << Mcc.Error;
  EXPECT_EQ(Mcc.Output, Oracle.Output) << "mcc model diverged";

  ExecResult Static = P->runStatic();
  ASSERT_TRUE(Static.OK) << "static: " << Static.Error;
  EXPECT_EQ(Static.Output, Oracle.Output) << "GCTD static model diverged";
  EXPECT_EQ(Static.PlanViolations, 0u)
      << "type inference under-sized a stack slot";

  ExecResult NoCoal = P->runNoCoalesce();
  ASSERT_TRUE(NoCoal.OK) << "nocoalesce: " << NoCoal.Error;
  EXPECT_EQ(NoCoal.Output, Oracle.Output) << "no-coalesce model diverged";
}

const Prog Programs[] = {
    {"scalars", "a = 2; b = 3;\nc = a * b + 1;\ndisp(c);\n"},

    {"arith_chain",
     "x = 1.5;\ny = (x + 2) * (x - 0.5) / 4;\nz = -y^2;\n"
     "fprintf('%.6f\\n', z);\n"},

    {"elementwise",
     "t0 = [1, 2; 3, 4];\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\n"
     "t3 = tan(t2);\nfprintf('%.5f ', t3);\nfprintf('\\n');\n"},

    {"matrix_multiply",
     "a = [1, 2; 3, 4];\nb = [5, 6; 7, 8];\nc = a * b;\ndisp(c);\n"
     "d = a' * b;\ndisp(d);\n"},

    {"indexing",
     "a = [10, 20, 30; 40, 50, 60];\ndisp(a(2, 3));\ndisp(a(4));\n"
     "disp(a(:, 2));\ndisp(a(1, :));\ndisp(a(end, end));\n"},

    {"subsasgn_growth",
     "v = [];\nfor k = 1:5\nv(k) = k * k;\nend\ndisp(v);\n"
     "a = zeros(2, 2);\na(4, 4) = 9;\ndisp(a);\n"},

    {"while_loop",
     "k = 0;\ns = 0;\nwhile k < 10\nk = k + 1;\ns = s + k;\nend\n"
     "disp(s);\n"},

    {"for_negative_step",
     "s = 0;\nfor i = 10:-2:1\ns = s + i;\nend\ndisp(s);\n"},

    {"nested_ifs",
     "x = 7;\nif x > 10\ny = 1;\nelseif x > 5\ny = 2;\nelse\ny = 3;\nend\n"
     "disp(y);\n"},

    {"break_continue",
     "s = 0;\nfor i = 1:10\nif mod(i, 2) == 0\ncontinue;\nend\n"
     "if i > 7\nbreak;\nend\ns = s + i;\nend\ndisp(s);\n"},

    {"short_circuit",
     "v = [1, 2, 3];\nk = 5;\nif k <= 3 && v(k) > 0\ndisp('yes');\nelse\n"
     "disp('no');\nend\n"},

    {"functions",
     "function main\nx = sq(3) + sq(4);\ndisp(hyp(3, 4));\ndisp(x);\n\n"
     "function y = sq(a)\ny = a * a;\n\n"
     "function h = hyp(a, b)\nh = sqrt(sq(a) + sq(b));\n"},

    {"multi_output",
     "a = rand(3, 5);\n[m, n] = size(a);\nfprintf('%d %d\\n', m, n);\n"},

    {"complex_numbers",
     "z = 3 + 4i;\ndisp(abs(z));\nw = exp(1i * 3.14159);\n"
     "fprintf('%.4f %.4f\\n', real(w), imag(w));\n"},

    {"complex_array",
     "t = 0:0.5:2;\nz = exp(1i .* t);\nm = abs(z);\n"
     "fprintf('%.3f ', m);\nfprintf('\\n');\n"},

    {"rand_reproducible",
     "a = rand(2, 2);\nb = rand(2, 2);\nc = a + b;\n"
     "fprintf('%.6f ', c);\nfprintf('\\n');\n"},

    {"logical_masking",
     "v = [3, -1, 4, -1, 5];\nm = v > 0;\ndisp(sum(v(m)));\n"},

    {"string_handling",
     "s = 'hello';\ndisp(s);\nfprintf('%s world, n=%d\\n', s, 42);\n"
     "disp(length(s));\n"},

    {"concatenation",
     "a = [1, 2];\nb = [a, 3, 4];\nc = [b; b];\ndisp(c);\n"
     "disp([a', a']);\n"},

    {"ranges_and_colon",
     "v = 2:2:10;\ndisp(v);\nw = v(2:4);\ndisp(w);\nv(2:3) = [0, 0];\n"
     "disp(v);\n"},

    {"transpose_chain",
     "a = [1, 2, 3];\nb = a';\nc = b';\ndisp(c);\nm = [1, 2; 3, 4];\n"
     "disp(m');\n"},

    {"solver_backslash",
     "A = [2, 0; 0, 4];\nb = [2; 8];\nx = A \\ b;\ndisp(x);\n"},

    {"reductions",
     "a = [1, 2; 3, 4];\ndisp(sum(a));\ndisp(max(a(:)));\n"
     "disp(min([5, 2, 8]));\ndisp(prod([1, 2, 3, 4]));\n"},

    {"growing_in_loop",
     "u = zeros(1, 3);\nfor k = 1:4\nu = [u, k];\nend\ndisp(u);\n"},

    {"recursive_function",
     "function main\ndisp(fact(6));\n\n"
     "function f = fact(n)\nif n <= 1\nf = 1;\nelse\nf = n * fact(n - 1);\n"
     "end\n"},

    {"three_dimensional",
     "a = zeros(2, 2, 2);\na(1, 2, 2) = 7;\ndisp(a(1, 2, 2));\n"
     "disp(numel(a));\ndisp(size(a, 3));\n"},

    {"eye_and_subsasgn",
     "a = eye(3, 3);\na(5, 2) = 1;\ndisp(a);\n"},

    {"display_named",
     "x = 41\ny = [1, 2; 3, 4]\n"},

    {"nested_loops",
     "s = 0;\nfor i = 1:3\nfor j = 1:3\ns = s + i * j;\nend\nend\n"
     "disp(s);\n"},

    {"heat_step",
     "n = 8;\nu = zeros(1, n);\nu(4) = 1;\nfor t = 1:10\n"
     "unew = u;\nfor k = 2:n-1\n"
     "unew(k) = u(k) + 0.4 * (u(k-1) - 2 * u(k) + u(k+1));\nend\n"
     "u = unew;\nend\nfprintf('%.5f ', u);\nfprintf('\\n');\n"},

    {"matrix_power",
     "a = [1, 1; 0, 1];\nb = a^4;\ndisp(b);\ndisp(2^10);\n"},

    {"mod_rem_mix",
     "for k = -3:3\nfprintf('%d:%d,%d ', k, mod(k, 3), rem(k, 3));\nend\n"
     "fprintf('\\n');\n"},

    {"linear_solve_tridiag",
     "n = 6;\nA = zeros(n, n);\nb = zeros(n, 1);\nfor i = 1:n\n"
     "A(i, i) = 2;\nb(i) = i;\nend\nfor i = 1:n-1\nA(i, i+1) = -1;\n"
     "A(i+1, i) = -1;\nend\nx = A \\ b;\nfprintf('%.4f ', x);\n"
     "fprintf('\\n');\n"},

    {"min_max_two_output",
     "v = [3, 9, 2, 9];\n[mx, ix] = max(v);\nfprintf('%d %d\\n', mx, ix);\n"},

    {"empty_handling",
     "e = [];\ndisp(isempty(e));\ndisp(size(e, 1));\nv = [e, 1, 2];\n"
     "disp(v);\n"},

    {"char_arithmetic",
     "c = 'abc';\nd = c + 1;\ndisp(d);\ndisp(c(2));\n"},

    // Regression: two phis at one loop header form a parallel copy on the
    // back edge (uprev = ucur; ucur = unew). Without parallel-copy
    // interference, GCTD shares a slot between one phi's result and the
    // other's pending source and the sequenced copies clobber it.
    {"leapfrog_lost_copy",
     "n = 6;\nuprev = zeros(n, n);\nucur = zeros(n, n);\nucur(3, 3) = 1;\n"
     "uprev = ucur;\nfor t = 1:3\nunew = 2 * ucur - uprev;\n"
     "unew(2:n-1, 2:n-1) = unew(2:n-1, 2:n-1) + 0.25 * ("
     "ucur(1:n-2, 2:n-1) + ucur(3:n, 2:n-1) + ucur(2:n-1, 1:n-2) + "
     "ucur(2:n-1, 3:n) - 4 * ucur(2:n-1, 2:n-1));\nuprev = ucur;\n"
     "ucur = unew;\nend\ndisp(ucur(3, 3));\ndisp(uprev(3, 3));\n"},

    {"switch_scalar",
     "for k = 1:4\nswitch k\ncase 1\ndisp('one');\ncase 3\n"
     "disp('three');\notherwise\ndisp(k);\nend\nend\n"},

    {"switch_string",
     "s = 'mid';\nswitch s\ncase 'low'\ndisp(1);\ncase 'mid'\n"
     "disp(2);\ncase 'high'\ndisp(3);\notherwise\ndisp(0);\nend\n"},

    {"switch_no_match",
     "x = 9;\nswitch x\ncase 1\ndisp('a');\ncase 2\ndisp('b');\nend\n"
     "disp('after');\n"},

    {"extra_builtins",
     "v = [3, 1, 4, 1];\nd = diag(v);\ndisp(trace(d));\n"
     "disp(fliplr(v));\nm = [1, 2; 3, 4];\ndisp(flipud(m));\n"
     "disp(cumsum(v));\ndisp(cumsum(m));\n"
     "disp(strcmp('abc', 'abc'));\ndisp(strcmp('abc', 'abd'));\n"
     "disp(diag(d)');\n"},

    {"logical_mask_write",
     "v = [3, -1, 4, -1, 5];\nv(v < 0) = 0;\ndisp(v);\n"
     "m = v > 3;\nv(m) = v(m) * 10;\ndisp(v);\n"},

    {"end_in_ranges",
     "a = 10:10:90;\ndisp(a(2:end));\ndisp(a(end-2:end));\n"
     "a(end-1:end) = [0, 0];\ndisp(a);\n"},

    {"nested_multi_output",
     "function main\n[lo, hi] = bounds([4, 1, 7, 2]);\n"
     "fprintf('%d %d\\n', lo, hi);\n\n"
     "function [lo, hi] = bounds(v)\nlo = min(v);\nhi = max(v);\n"},

    {"column_major_linear",
     "a = [1, 2, 3; 4, 5, 6];\nfor k = 1:6\nfprintf('%d ', a(k));\nend\n"
     "fprintf('\\n');\n"},

    {"scalar_expansion_assign",
     "a = zeros(3, 3);\na(2, :) = 7;\na(:, 3) = 9;\ndisp(a);\n"},

    // Regression: a genuine value swap through a temporary.
    {"swap_pattern",
     "a = [1, 2, 3];\nb = [4, 5, 6];\nfor k = 1:3\nt = a;\na = b;\n"
     "b = t;\nend\ndisp(a);\ndisp(b);\n"},
};

INSTANTIATE_TEST_SUITE_P(Programs, DifferentialTest,
                         ::testing::ValuesIn(Programs),
                         [](const ::testing::TestParamInfo<Prog> &Info) {
                           return Info.param.Name;
                         });

} // namespace
