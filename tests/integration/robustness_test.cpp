//===- robustness_test.cpp - Hardened-pipeline integration tests ----------===//
//
// The contract under test (driver/Compiler.h): compileSource never crashes.
// Invalid input yields nullptr plus error diagnostics; valid input always
// yields a runnable program, degrading down the ladder (GCTD plans ->
// identity plans -> mcc model -> AST interpreter) when a stage fails or a
// fault is injected. Execution guards (op budget, heap cap, recursion
// depth) stop runaway programs with classified traps instead of hangs or
// std::bad_alloc.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace matcoal;

namespace {

/// A program every ladder rung can execute, with one phi-bearing loop so
/// the degraded configurations exercise real control flow.
const char *GoodSource = "s = 0;\n"
                         "for i = 1:10\n"
                         "  s = s + i * i;\n"
                         "end\n"
                         "disp(s);\n";

std::string goodOutput() {
  Diagnostics Diags;
  auto P = compileSource(GoodSource, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  if (!P)
    return "";
  ExecResult R = P->runStatic();
  EXPECT_TRUE(R.OK) << R.Error;
  return R.Output;
}

// --- Malformed input: nullptr + diagnostics, never a crash --------------

class MalformedInput : public ::testing::TestWithParam<const char *> {};

TEST_P(MalformedInput, RejectedWithDiagnostics) {
  Diagnostics Diags;
  auto P = compileSource(GetParam(), Diags);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors()) << "rejected without an error message";
  for (const Diagnostic &D : Diags.all())
    EXPECT_FALSE(D.Message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, MalformedInput,
    ::testing::Values(
        // Unbalanced delimiters and truncated constructs.
        "x = (1 + 2;\n",
        "x = [1, 2; 3\n",
        "if x > 0\n  y = 1;\n",
        "for i = 1:10\n  disp(i);\n",
        "while 1\n",
        "end\n",
        "x = 1 +\n",
        "x = ;\n",
        "= 5;\n",
        "function\n",
        "function [ = f()\nend\n",
        // Unterminated string.
        "x = 'oops;\ndisp(x);\n",
        // Operators with missing operands.
        "x = * 3;\n",
        "x = 1 ** 2;\n",
        "x = );\n",
        // Stray keywords in expression position.
        "x = if;\n",
        "x = end + 1;\n",
        // Garbage bytes.
        "\x01\x02\x03\x04",
        "x = 1; @#$%^&\n",
        "]]]]\n",
        // Nested function definition mid-script.
        "x = 1;\nfunction y = f()\ny = 2;\n"));

TEST(MalformedInput, EmptyAndWhitespaceOnlySources) {
  // Degenerate-but-harmless inputs must not crash; whatever the verdict,
  // a null program must come with an explanatory diagnostic.
  for (const char *Src : {"", "\n\n\n", "   ", "% only a comment\n", ";;;\n"}) {
    Diagnostics Diags;
    auto P = compileSource(Src, Diags);
    if (!P) {
      EXPECT_TRUE(Diags.hasErrors()) << "silent failure on: " << Src;
    }
  }
}

TEST(MalformedInput, ParserRecoversAndReportsMultipleErrors) {
  // One buffer, four independent syntax errors: recovery must surface
  // more than the first one while keeping the nullptr contract.
  Diagnostics Diags;
  auto P = compileSource("x = (1;\n"
                         "y = 2;\n"
                         "z = * 4;\n"
                         "w = [5, 6;\n"
                         "v = 7 +\n"
                         "disp(y);\n",
                         Diags);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_GE(Diags.errorCount(), 2u)
      << "parser stopped at the first error:\n" << Diags.str();
}

TEST(MalformedInput, ErrorCascadeIsCapped) {
  // Thousands of bad lines must not produce thousands of diagnostics.
  std::string Src;
  for (int I = 0; I < 5000; ++I)
    Src += "x = (;\n";
  Diagnostics Diags;
  auto P = compileSource(Src, Diags);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_LE(Diags.errorCount(), 100u) << "unbounded error cascade";
}

// --- Adversarial-but-valid input: compiles and runs everywhere ----------

class AdversarialInput : public ::testing::TestWithParam<const char *> {};

TEST_P(AdversarialInput, CompilesAndNoModeCrashes) {
  Diagnostics Diags;
  CompileOptions O;
  O.OpBudget = 20000000; // Generous, but bounded.
  auto P = compileSource(GetParam(), Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  // Any mode may trap (out-of-bounds, budget...), but a failure must be
  // classified and carry a message -- never a crash or silent stop.
  for (ExecResult R : {P->runMcc(), P->runStatic(), P->runNoCoalesce()}) {
    if (!R.OK) {
      EXPECT_NE(R.Trap, TrapKind::None) << R.Error;
      EXPECT_FALSE(R.Error.empty());
    }
  }
  InterpResult I = P->runInterp();
  if (!I.OK) {
    EXPECT_NE(I.Trap, TrapKind::None) << I.Error;
    EXPECT_FALSE(I.Error.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stress, AdversarialInput,
    ::testing::Values(
        // Empty arrays and zero-extent shapes.
        "x = [];\ndisp(isempty(x));\n",
        "x = zeros(0, 3);\ndisp(size(x));\n",
        "x = [];\ny = [x, x];\ndisp(isempty(y));\n",
        // Out-of-bounds reads (must trap, not crash).
        "x = [1, 2, 3];\ndisp(x(10));\n",
        "x = 1;\ndisp(x(0));\n",
        // Shape mismatches.
        "x = [1, 2, 3] + [1; 2];\ndisp(x);\n",
        "x = [1, 2] * [3, 4];\ndisp(x);\n",
        // Growth through end+1 assignment.
        "x = 1;\nfor i = 1:50\n  x(i + 1) = i;\nend\ndisp(x(51));\n",
        // Deeply nested expressions.
        "x = ((((((((((1))))))))));\ndisp(x);\n",
        "x = 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + 10))))))));\n"
        "disp(x);\n",
        // Deep control-flow nesting.
        "x = 0;\nfor a = 1:2\n for b = 1:2\n  for c = 1:2\n   for d = 1:2\n"
        "    x = x + 1;\n   end\n  end\n end\nend\ndisp(x);\n",
        // Degenerate loop bounds (empty ranges).
        "s = 0;\nfor i = 5:1\n  s = s + 1;\nend\ndisp(s);\n",
        "s = 0;\nfor i = 1:0\n  s = s + 1;\nend\ndisp(s);\n",
        // Inf/NaN arithmetic.
        "x = 1 / 0;\ny = 0 / 0;\ndisp(x);\ndisp(y);\n",
        "x = log(0);\ndisp(x);\n",
        // Repeated shadowing with shape changes.
        "x = 1;\nx = [1, 2, 3];\nx = 'str';\nx = zeros(2);\n"
        "disp(size(x));\n",
        // Undefined name (must trap as UndefinedName downstream).
        "disp(no_such_variable_anywhere);\n",
        // A variable that changes shape every loop iteration.
        "x = 1;\nfor i = 1:6\n  x = [x, x];\nend\ndisp(length(x));\n"));

TEST(AdversarialInput, UndefinedNameTrapIsClassified) {
  Diagnostics Diags;
  auto P = compileSource("disp(no_such_variable_anywhere);\n", Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult R = P->runMcc();
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Trap, TrapKind::UndefinedName) << R.Error;
  Diagnostics ExecDiags;
  reportExecResult(R, ExecDiags);
  EXPECT_TRUE(ExecDiags.hasErrors());
  EXPECT_NE(ExecDiags.str().find("undefined-name"), std::string::npos)
      << ExecDiags.str();
}

TEST(AdversarialInput, OutOfBoundsTrapIsClassified) {
  Diagnostics Diags;
  auto P = compileSource("x = [1, 2, 3];\ndisp(x(10));\n", Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  for (ExecResult R : {P->runMcc(), P->runStatic()}) {
    ASSERT_FALSE(R.OK);
    EXPECT_EQ(R.Trap, TrapKind::IndexOutOfBounds) << R.Error;
  }
}

TEST(AdversarialInput, ShapeMismatchTrapIsClassified) {
  Diagnostics Diags;
  auto P = compileSource("x = [1, 2, 3] + [1; 2];\ndisp(x);\n", Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult R = P->runMcc();
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Trap, TrapKind::ShapeMismatch) << R.Error;
}

// --- Fault injection: every stage degrades to a runnable rung -----------

struct LadderCase {
  CompileStage Stage;
  DegradeLevel Expected;
};

class FaultLadder : public ::testing::TestWithParam<LadderCase> {};

TEST_P(FaultLadder, DegradesAndStillRuns) {
  const LadderCase C = GetParam();
  Diagnostics Diags;
  CompileOptions O;
  O.InjectFault = C.Stage;
  auto P = compileSource(GoodSource, Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->level(), C.Expected)
      << "expected rung " << degradeLevelName(C.Expected) << ", got "
      << degradeLevelName(P->level());

  // The degradation must be announced as a warning, not silent and not
  // an error (the program is still usable).
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  bool SawWarning = false;
  for (const Diagnostic &D : Diags.all())
    if (D.Level == DiagLevel::Warning &&
        D.Message.find(compileStageName(C.Stage)) != std::string::npos &&
        D.Message.find(degradeLevelName(C.Expected)) != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning) << "no degradation warning in:\n" << Diags.str();

  // Every run mode still executes and agrees with the full pipeline.
  const std::string Expected = goodOutput();
  ExecResult Mcc = P->runMcc();
  ASSERT_TRUE(Mcc.OK) << Mcc.Error;
  EXPECT_EQ(Mcc.Output, Expected);
  ExecResult Static = P->runStatic();
  ASSERT_TRUE(Static.OK) << Static.Error;
  EXPECT_EQ(Static.Output, Expected);
  ExecResult NoCoal = P->runNoCoalesce();
  ASSERT_TRUE(NoCoal.OK) << NoCoal.Error;
  EXPECT_EQ(NoCoal.Output, Expected);
  InterpResult I = P->runInterp();
  ASSERT_TRUE(I.OK) << I.Error;
  EXPECT_EQ(I.Output, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, FaultLadder,
    ::testing::Values(
        LadderCase{CompileStage::Parse, DegradeLevel::InterpOnly},
        LadderCase{CompileStage::Lower, DegradeLevel::InterpOnly},
        LadderCase{CompileStage::SSA, DegradeLevel::InterpOnly},
        LadderCase{CompileStage::TypeInf, DegradeLevel::MccOnly},
        LadderCase{CompileStage::GCTD, DegradeLevel::IdentityPlans}),
    [](const ::testing::TestParamInfo<LadderCase> &Info) {
      return compileStageName(Info.param.Stage);
    });

TEST(FaultLadder, EnvironmentVariableInjectsFault) {
  ASSERT_EQ(setenv("MATCOAL_FAULT", "gctd", 1), 0);
  Diagnostics Diags;
  auto P = compileSource(GoodSource, Diags); // Plain overload: env applies.
  unsetenv("MATCOAL_FAULT");
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->level(), DegradeLevel::IdentityPlans);
  ExecResult R = P->runStatic();
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, goodOutput());
}

TEST(FaultLadder, UnknownEnvironmentValueIsALoudError) {
  // A misspelled stage name must not silently run the un-faulted
  // pipeline: the compile refuses and the error lists the valid stages.
  ASSERT_EQ(setenv("MATCOAL_FAULT", "frobnicate", 1), 0);
  Diagnostics Diags;
  auto P = compileSource(GoodSource, Diags);
  unsetenv("MATCOAL_FAULT");
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("MATCOAL_FAULT"), std::string::npos)
      << Diags.str();
  EXPECT_NE(Diags.str().find("frobnicate"), std::string::npos);
  EXPECT_NE(Diags.str().find("parse, lower, ssa, typeinf, gctd"),
            std::string::npos)
      << Diags.str();
}

TEST(FaultLadder, ExplicitOffSpellingsAreAccepted) {
  for (const char *Off : {"", "none"}) {
    ASSERT_EQ(setenv("MATCOAL_FAULT", Off, 1), 0);
    Diagnostics Diags;
    auto P = compileSource(GoodSource, Diags);
    unsetenv("MATCOAL_FAULT");
    ASSERT_NE(P, nullptr) << Diags.str();
    EXPECT_EQ(P->level(), DegradeLevel::Full);
  }
}

TEST(FaultLadder, DegradationCanBeRefused) {
  Diagnostics Diags;
  CompileOptions O;
  O.InjectFault = CompileStage::GCTD;
  O.AllowDegrade = false;
  auto P = compileSource(GoodSource, Diags, O);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("degradation is disabled"), std::string::npos)
      << Diags.str();
}

TEST(FaultLadder, CleanCompileStaysAtFull) {
  Diagnostics Diags;
  auto P = compileSource(GoodSource, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->level(), DegradeLevel::Full);
  for (const Diagnostic &D : Diags.all())
    EXPECT_NE(D.Level, DiagLevel::Warning) << D.Message;
}

TEST(FaultLadder, InvalidInputStillNullEvenWithInjection) {
  // Degradation is for valid programs; syntax errors keep the historical
  // nullptr contract no matter what fault is injected.
  Diagnostics Diags;
  CompileOptions O;
  O.InjectFault = CompileStage::GCTD;
  auto P = compileSource("x = (1;\n", Diags, O);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

// --- Execution guards: classified traps, not hangs ----------------------

TEST(ExecutionGuards, OpBudgetTrapsInAllModes) {
  Diagnostics Diags;
  CompileOptions O;
  O.OpBudget = 50; // Far below what GoodSource needs.
  auto P = compileSource(GoodSource, Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  for (ExecResult R : {P->runMcc(), P->runStatic(), P->runNoCoalesce()}) {
    ASSERT_FALSE(R.OK);
    EXPECT_EQ(R.Trap, TrapKind::OpBudget) << R.Error;
  }
  InterpResult I = P->runInterp();
  ASSERT_FALSE(I.OK);
  EXPECT_EQ(I.Trap, TrapKind::OpBudget) << I.Error;
}

TEST(ExecutionGuards, HeapLimitTrapsGrowthLoop) {
  // Doubles a row vector 24 times: ~128 MB if left unchecked.
  const char *Growth = "x = 1;\n"
                       "for i = 1:24\n"
                       "  x = [x, x];\n"
                       "end\n"
                       "disp(length(x));\n";
  Diagnostics Diags;
  CompileOptions O;
  O.HeapLimit = 1 << 20; // 1 MB.
  auto P = compileSource(Growth, Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  for (ExecResult R : {P->runMcc(), P->runStatic()}) {
    ASSERT_FALSE(R.OK);
    EXPECT_EQ(R.Trap, TrapKind::HeapLimit) << R.Error;
  }
  InterpResult I = P->runInterp();
  ASSERT_FALSE(I.OK);
  EXPECT_EQ(I.Trap, TrapKind::HeapLimit) << I.Error;
}

TEST(ExecutionGuards, RecursionDepthTrapsRunawayRecursion) {
  const char *Recursive = "function main()\n"
                          "  disp(f(1000000));\n"
                          "end\n"
                          "function r = f(n)\n"
                          "  if n <= 0\n"
                          "    r = 0;\n"
                          "  else\n"
                          "    r = f(n - 1);\n"
                          "  end\n"
                          "end\n";
  Diagnostics Diags;
  CompileOptions O;
  O.RecursionLimit = 32;
  auto P = compileSource(Recursive, Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult R = P->runMcc();
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Trap, TrapKind::RecursionDepth) << R.Error;
  InterpResult I = P->runInterp();
  ASSERT_FALSE(I.OK);
  EXPECT_EQ(I.Trap, TrapKind::RecursionDepth) << I.Error;
}

TEST(ExecutionGuards, BoundedRecursionStillSucceeds) {
  const char *Recursive = "function main()\n"
                          "  disp(f(10));\n"
                          "end\n"
                          "function r = f(n)\n"
                          "  if n <= 0\n"
                          "    r = 0;\n"
                          "  else\n"
                          "    r = n + f(n - 1);\n"
                          "  end\n"
                          "end\n";
  Diagnostics Diags;
  CompileOptions O;
  O.RecursionLimit = 32;
  auto P = compileSource(Recursive, Diags, O);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult R = P->runMcc();
  ASSERT_TRUE(R.OK) << R.Error;
  InterpResult I = P->runInterp();
  ASSERT_TRUE(I.OK) << I.Error;
  EXPECT_EQ(R.Output, I.Output);
}

TEST(ExecutionGuards, DefaultLimitsLeaveBenchmarksUntouched) {
  // The suite's own programs must run to completion under the default
  // guards (they are the workload the defaults are sized for).
  const BenchmarkProgram *Prog = findBenchmark("diff");
  ASSERT_NE(Prog, nullptr);
  Diagnostics Diags;
  auto P = compileSource(Prog->Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->level(), DegradeLevel::Full);
  ExecResult R = P->runStatic();
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Trap, TrapKind::None);
}

// --- Fault injection against a real benchmark ---------------------------

TEST(FaultLadder, BenchmarkSurvivesEveryRung) {
  const BenchmarkProgram *Prog = findBenchmark("diff");
  ASSERT_NE(Prog, nullptr);
  Diagnostics Ref;
  auto Baseline = compileSource(Prog->Source, Ref);
  ASSERT_NE(Baseline, nullptr) << Ref.str();
  ExecResult Want = Baseline->runStatic();
  ASSERT_TRUE(Want.OK) << Want.Error;

  for (CompileStage St : {CompileStage::Parse, CompileStage::SSA,
                          CompileStage::TypeInf, CompileStage::GCTD}) {
    Diagnostics Diags;
    CompileOptions O;
    O.InjectFault = St;
    auto P = compileSource(Prog->Source, Diags, O);
    ASSERT_NE(P, nullptr) << compileStageName(St) << ":\n" << Diags.str();
    EXPECT_NE(P->level(), DegradeLevel::Full) << compileStageName(St);
    ExecResult R = P->runStatic();
    ASSERT_TRUE(R.OK) << compileStageName(St) << ": " << R.Error;
    EXPECT_EQ(R.Output, Want.Output) << compileStageName(St);
  }
}

} // namespace
