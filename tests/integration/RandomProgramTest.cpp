//===- RandomProgramTest.cpp - Differential fuzzing of the pipeline -------===//
//
// Generates random but shape-safe MATLAB programs and requires the
// interpreter, the mcc-model VM, the GCTD static VM and the no-coalescing
// VM to produce byte-identical output. Because every engine shares the
// kernel library and PRNG stream, even data-dependent control flow and
// IEEE corner values compare exactly; the generator only has to avoid
// guaranteed runtime errors (out-of-bounds reads, non-conforming shapes).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gctd/GCTD.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace matcoal;

namespace {

/// Tracks each generated variable's concrete shape so expressions always
/// conform and subscripts stay in bounds.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    OS.str("");
    // Seed a few variables with known shapes.
    unsigned NVars = 2 + pick(3);
    for (unsigned I = 0; I < NVars; ++I)
      emitFreshAssignment();
    unsigned NStmts = 4 + pick(8);
    for (unsigned I = 0; I < NStmts; ++I)
      emitStatement(/*Depth=*/0, /*InLoop=*/false);
    emitChecksums();
    return OS.str();
  }

private:
  struct Shape {
    int R = 1, C = 1;
    bool scalar() const { return R == 1 && C == 1; }
  };

  unsigned pick(unsigned N) { return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng); }
  bool coin() { return pick(2) == 0; }
  double literal() {
    return std::uniform_int_distribution<int>(-400, 400)(Rng) / 100.0;
  }

  std::string varName(size_t I) {
    return std::string(1, static_cast<char>('a' + (I % 26))) +
           (I >= 26 ? std::to_string(I / 26) : "");
  }

  /// A random existing variable, optionally constrained.
  int findVar(bool WantScalar) {
    std::vector<int> Candidates;
    for (size_t I = 0; I < Vars.size(); ++I)
      if (!WantScalar || Vars[I].scalar())
        Candidates.push_back(static_cast<int>(I));
    if (Candidates.empty())
      return -1;
    return Candidates[pick(static_cast<unsigned>(Candidates.size()))];
  }

  /// Expression of exactly the given shape.
  std::string expr(Shape S, int Depth) {
    // Leaves.
    if (Depth >= 3 || pick(3) == 0) {
      if (S.scalar()) {
        int V = findVar(true);
        if (V >= 0 && coin())
          return varName(V);
        std::ostringstream L;
        L << literal();
        return L.str();
      }
      // Array leaf: a matching variable or a constructor.
      for (size_t I = 0; I < Vars.size(); ++I)
        if (Vars[I].R == S.R && Vars[I].C == S.C && coin())
          return varName(I);
      const char *Ctor[] = {"zeros", "ones", "rand"};
      std::ostringstream L;
      L << Ctor[pick(3)] << "(" << S.R << ", " << S.C << ")";
      return L.str();
    }

    switch (pick(S.scalar() ? 7 : 6)) {
    case 0: { // Elementwise binary (scalar broadcast allowed).
      const char *Ops[] = {"+", "-", ".*", "./"};
      std::string L = coin() ? expr(S, Depth + 1)
                             : expr(Shape{1, 1}, Depth + 1);
      std::string R = expr(S, Depth + 1);
      if (L == R && coin())
        L = expr(Shape{1, 1}, Depth + 1);
      return "(" + L + " " + Ops[pick(4)] + " " + R + ")";
    }
    case 1: { // Unary / elementwise map.
      const char *Fns[] = {"abs", "floor", "sin", "cos", "exp"};
      if (coin())
        return "(-" + expr(S, Depth + 1) + ")";
      return std::string(Fns[pick(5)]) + "(" + expr(S, Depth + 1) + ")";
    }
    case 2: { // Scalar scale.
      return "(" + expr(Shape{1, 1}, Depth + 1) + " * " +
             expr(S, Depth + 1) + ")";
    }
    case 3: { // Transpose of the transposed shape.
      return expr(Shape{S.C, S.R}, Depth + 1) + "'";
    }
    case 4: { // Matrix multiply with conforming inner dim.
      int K = 1 + static_cast<int>(pick(3));
      return "(" + expr(Shape{S.R, K}, Depth + 1) + " * " +
             expr(Shape{K, S.C}, Depth + 1) + ")";
    }
    case 5: { // Reduction or indexing producing this shape.
      if (S.scalar()) {
        int V = findVar(false);
        if (V >= 0 && !Vars[V].scalar()) {
          // In-bounds scalar read.
          std::ostringstream E;
          E << varName(V) << "(" << 1 + pick(Vars[V].R) << ", "
            << 1 + pick(Vars[V].C) << ")";
          return E.str();
        }
        return "sum(sum(" + expr(Shape{2, 2}, Depth + 1) + "))";
      }
      if (S.R == 1) // Row: a range scaled into shape via subsref.
        return "(" + expr(Shape{1, S.C}, Depth + 1) + " + " +
               rangeOfLen(S.C) + ")";
      return expr(S, Depth + 1);
    }
    default: { // Scalar-only extras.
      const char *Fns[] = {"sqrt", "tan", "atan"};
      return std::string(Fns[pick(3)]) + "(abs(" +
             expr(Shape{1, 1}, Depth + 1) + ") + 0.5)";
    }
    }
  }

  std::string rangeOfLen(int N) {
    int Lo = 1 + static_cast<int>(pick(3));
    std::ostringstream E;
    // Parenthesized: the colon binds looser than + in MATLAB.
    E << "(" << Lo << ":" << Lo + N - 1 << ")";
    return E.str();
  }

  void emitFreshAssignment() {
    Shape S;
    switch (pick(4)) {
    case 0: S = {1, 1}; break;
    case 1: S = {1, 2 + static_cast<int>(pick(3))}; break;
    case 2: S = {2 + static_cast<int>(pick(2)), 1}; break;
    default:
      S = {2 + static_cast<int>(pick(2)), 2 + static_cast<int>(pick(2))};
      break;
    }
    // Generate the initializer before registering the variable, so the
    // expression cannot reference the name being defined.
    std::string Init = expr(S, 1);
    size_t V = Vars.size();
    Vars.push_back(S);
    OS << varName(V) << " = " << Init << ";\n";
  }

  void emitStatement(int Depth, bool InLoop) {
    switch (pick(Depth >= 2 ? 4 : 6)) {
    case 0: { // Reassign an existing variable, same shape.
      int V = findVar(false);
      if (V < 0)
        return emitFreshAssignment();
      OS << varName(V) << " = " << expr(Vars[V], 0) << ";\n";
      return;
    }
    case 1:
      return emitFreshAssignment();
    case 2: { // Element write, in bounds (or growing outside loops).
      int V = -1;
      for (size_t I = 0; I < Vars.size(); ++I)
        if (!Vars[I].scalar() && (V < 0 || coin()))
          V = static_cast<int>(I);
      if (V < 0)
        return emitFreshAssignment();
      int RI = 1 + static_cast<int>(pick(Vars[V].R));
      int CI = 1 + static_cast<int>(pick(Vars[V].C));
      bool Grow = !InLoop && pick(4) == 0;
      if (Grow)
        RI = Vars[V].R + 1 + static_cast<int>(pick(2));
      // The rhs evaluates BEFORE the write: generate it against the
      // pre-growth shape.
      std::string Rhs = expr(Shape{1, 1}, 1);
      if (Grow && RI > Vars[V].R)
        Vars[V].R = RI;
      OS << varName(V) << "(" << RI << ", " << CI << ") = " << Rhs
         << ";\n";
      return;
    }
    case 3: { // Conditional; both arms keep shapes stable.
      int V = findVar(false);
      if (V < 0)
        return emitFreshAssignment();
      OS << "if " << expr(Shape{1, 1}, 1) << " > 0\n";
      OS << varName(V) << " = " << expr(Vars[V], 1) << ";\n";
      if (coin()) {
        OS << "else\n";
        OS << varName(V) << " = " << expr(Vars[V], 1) << ";\n";
      }
      OS << "end\n";
      return;
    }
    case 4: { // Counted loop with shape-stable body.
      unsigned Iters = 2 + pick(4);
      OS << "for li" << Depth << " = 1:" << Iters << "\n";
      unsigned Body = 1 + pick(2);
      for (unsigned I = 0; I < Body; ++I)
        emitStatement(Depth + 1, /*InLoop=*/true);
      OS << "end\n";
      return;
    }
    default: { // While loop with a decreasing counter.
      OS << "wc" << Depth << " = " << 2 + pick(3) << ";\n";
      OS << "while wc" << Depth << " > 0\n";
      emitStatement(Depth + 1, /*InLoop=*/true);
      OS << "wc" << Depth << " = wc" << Depth << " - 1;\n";
      OS << "end\n";
      return;
    }
    }
  }

  void emitChecksums() {
    for (size_t I = 0; I < Vars.size(); ++I)
      OS << "fprintf('" << varName(I) << "=%.9g;%d;%d ', sum(sum(abs("
         << varName(I) << "))), size(" << varName(I) << ", 1), size("
         << varName(I) << ", 2));\n";
    OS << "fprintf('\\n');\n";
  }

  std::mt19937 Rng;
  std::ostringstream OS;
  std::vector<Shape> Vars;
};

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, AllEnginesAgree) {
  ProgramGenerator Gen(GetParam() * 7919 + 13);
  std::string Src = Gen.generate();

  Diagnostics Diags;
  auto P = compileSource(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str() << "\nprogram:\n" << Src;

  InterpResult Oracle = P->runInterp();
  ASSERT_TRUE(Oracle.OK) << Oracle.Error << "\nprogram:\n" << Src;

  ExecResult Mcc = P->runMcc();
  ASSERT_TRUE(Mcc.OK) << Mcc.Error << "\nprogram:\n" << Src;
  EXPECT_EQ(Mcc.Output, Oracle.Output) << "program:\n" << Src;

  ExecResult Static = P->runStatic();
  ASSERT_TRUE(Static.OK) << Static.Error << "\nprogram:\n" << Src;
  EXPECT_EQ(Static.Output, Oracle.Output) << "program:\n" << Src;
  EXPECT_EQ(Static.PlanViolations, 0u) << "program:\n" << Src;

  ExecResult NoCoal = P->runNoCoalesce();
  ASSERT_TRUE(NoCoal.OK) << NoCoal.Error << "\nprogram:\n" << Src;
  EXPECT_EQ(NoCoal.Output, Oracle.Output) << "program:\n" << Src;

  // Structural property, checked at plan time inside compileSource: no
  // interfering pair shares a storage slot.
  EXPECT_EQ(P->PlanConsistencyErrors, 0u) << "program:\n" << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(0u, 40u));

} // namespace
