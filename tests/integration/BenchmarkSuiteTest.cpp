//===- BenchmarkSuiteTest.cpp - The 11-program suite end to end -----------===//
//
// Every suite program must compile, verify, and produce identical output
// under the mcc model, the GCTD static model and the no-coalescing
// ablation; GCTD must respect every inferred stack bound (no plan
// violations) and actually coalesce something.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

class SuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteTest, ModelsAgreeAndPlanHolds) {
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  ASSERT_NE(Prog, nullptr);
  Diagnostics Diags;
  auto P = compileSource(Prog->Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  ExecResult Mcc = P->runMcc();
  ASSERT_TRUE(Mcc.OK) << Mcc.Error;
  EXPECT_FALSE(Mcc.Output.empty());

  ExecResult Static = P->runStatic();
  ASSERT_TRUE(Static.OK) << Static.Error;
  EXPECT_EQ(Static.Output, Mcc.Output) << "GCTD changed program meaning";
  EXPECT_EQ(Static.PlanViolations, 0u) << "stack plan under-sized";

  ExecResult NoCoal = P->runNoCoalesce();
  ASSERT_TRUE(NoCoal.OK) << NoCoal.Error;
  EXPECT_EQ(NoCoal.Output, Mcc.Output);

  // GCTD must find coalescing opportunities in every suite program.
  CompiledProgram::Stats S = P->stats();
  EXPECT_GT(S.StaticSubsumed + S.DynamicSubsumed, 0u);
  // Coalescing must reduce memory relative to the identity plan.
  EXPECT_LE(Static.Mem.AvgDynamicBytes, NoCoal.Mem.AvgDynamicBytes * 1.001)
      << "GCTD used more memory than no coalescing at all";
}

TEST_P(SuiteTest, InterpreterMatchesOnSmallPrograms) {
  // The interpreter oracle runs the quicker programs (fiff/crni are
  // covered by the model-agreement test above and the figure harnesses).
  if (GetParam() == "fiff" || GetParam() == "crni")
    GTEST_SKIP() << "long-running; covered by model agreement";
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  Diagnostics Diags;
  auto P = compileSource(Prog->Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  InterpResult Oracle = P->runInterp();
  ASSERT_TRUE(Oracle.OK) << Oracle.Error;
  ExecResult Static = P->runStatic();
  ASSERT_TRUE(Static.OK) << Static.Error;
  EXPECT_EQ(Static.Output, Oracle.Output);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SuiteTest,
    ::testing::Values("adpt", "capr", "clos", "crni", "diff", "dich",
                      "edit", "fdtd", "fiff", "nb1d", "nb3d"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

TEST(SuiteMetadata, TableOneCountsAreSane) {
  ASSERT_EQ(benchmarkSuite().size(), 11u);
  for (const BenchmarkProgram &P : benchmarkSuite()) {
    EXPECT_GE(P.mFileCount(), 2u) << P.Name;  // Driver + main routine.
    EXPECT_GT(P.lineCount(), 10u) << P.Name;
    EXPECT_FALSE(P.Synopsis.empty());
    EXPECT_FALSE(P.Origin.empty());
  }
  EXPECT_EQ(findBenchmark("nope"), nullptr);
}

} // namespace
