//===- GCTDTest.cpp - GCTD phase 1 + phase 2 tests ------------------------===//

#include "gctd/GCTD.h"
#include "gctd/PartialInterference.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"

#include <gtest/gtest.h>
#include <map>
#include <set>

using namespace matcoal;

namespace {

struct Compiled {
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
  Diagnostics Diags;

  Function &fn(const std::string &Name = "main") {
    return *M->findFunction(Name);
  }

  VarId varNamed(const std::string &Base, int Version,
                 const std::string &Fn = "main") {
    Function &F = fn(Fn);
    for (unsigned V = 0; V < F.numVars(); ++V)
      if (F.var(V).Base == Base && F.var(V).Version == Version)
        return static_cast<VarId>(V);
    return NoVar;
  }
};

Compiled compile(const std::string &Src) {
  Compiled R;
  auto Prog = parseProgram(Src, R.Diags);
  EXPECT_NE(Prog, nullptr) << R.Diags.str();
  R.M = lowerProgram(*Prog, R.Diags);
  EXPECT_NE(R.M, nullptr) << R.Diags.str();
  for (auto &F : R.M->Functions) {
    EXPECT_TRUE(buildSSA(*F, R.Diags)) << R.Diags.str();
    runCleanupPipeline(*F);
  }
  R.Ctx = std::make_unique<SymExprContext>();
  R.TI = std::make_unique<TypeInference>(*R.M, *R.Ctx, R.Diags);
  R.TI->run("main");
  return R;
}

//===----------------------------------------------------------------------===//
// Phase 1: interference
//===----------------------------------------------------------------------===//

TEST(Interference, OverlappingLiveRangesInterfere) {
  // Paper section 2.1's example: du-chains of a and b cross.
  auto R = compile("a = rand(2, 2);\nb = rand(2, 2);\nc = a(1, 1);\n"
                   "d = b + c;\ndisp(d);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  ASSERT_NE(A, NoVar);
  ASSERT_NE(B, NoVar);
  EXPECT_TRUE(IG.interferes(A, B));
  EXPECT_NE(IG.colorOf(A), IG.colorOf(B));
}

TEST(Interference, DisjointLiveRangesDoNotInterfere) {
  auto R = compile("a = rand(3, 3);\ndisp(a);\nb = rand(3, 3);\ndisp(b);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  EXPECT_FALSE(IG.interferes(A, B));
}

TEST(Interference, ArrayAdditionAllowsInPlace) {
  // Section 2.3.1: c = a + b adds no operator-semantics interference, so
  // when a dies at the statement c can reuse a's storage (same color).
  auto R = compile("a = rand(4, 4);\nb = rand(4, 4);\nc = a + b;\n"
                   "disp(c);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_FALSE(IG.interferes(A, C));
}

TEST(Interference, MatrixMultiplyForcesInterference) {
  // Section 2.3: c = a*b with nonscalar operands cannot be in place.
  auto R = compile("a = rand(4, 4);\nb = rand(4, 4);\nc = a * b;\n"
                   "disp(c);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_TRUE(IG.interferes(A, C));
  EXPECT_TRUE(IG.interferes(B, C));
}

TEST(Interference, MatrixMultiplyScalarOperandAllowsInPlace) {
  // With a scalar operand, * is elementwise: in-place is fine.
  auto R = compile("a = rand(4, 4);\ns = 2.5;\nc = s * a;\ndisp(c);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_FALSE(IG.interferes(A, C));
}

TEST(Interference, SubsrefScalarSubscriptInPlace) {
  // Section 2.3.2: c = a(1) can be computed in place in a.
  auto R = compile("a = rand(2, 2);\nc = a(1);\nd = c + 1;\ndisp(d);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_FALSE(IG.interferes(A, C));
}

TEST(Interference, SubsrefArraySubscriptForcesInterference) {
  // c = a(e) with array e can permute: unsafe in place.
  auto R = compile("a = rand(2, 2);\ne = 4:-1:1;\nc = a(e);\ndisp(c);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_TRUE(IG.interferes(A, C));
}

TEST(Interference, SubsasgnNeverInterferesWithBase) {
  // Section 2.3.3.1: b = subsasgn(a, ...) is always formable in place.
  auto R = compile("a = eye(4, 4);\na(6, 1) = 1;\ndisp(a);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A0 = R.varNamed("a", 0);
  VarId A1 = R.varNamed("a", 1);
  ASSERT_NE(A0, NoVar);
  ASSERT_NE(A1, NoVar);
  EXPECT_FALSE(IG.interferes(A0, A1));
  EXPECT_EQ(IG.colorOf(A0), IG.colorOf(A1));
}

TEST(Interference, TransposeOfMatrixForcesInterference) {
  auto R = compile("a = rand(3, 4);\nb = a';\ndisp(b);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  EXPECT_TRUE(IG.interferes(R.varNamed("a", 0), R.varNamed("b", 0)));
}

TEST(Interference, TransposeOfVectorAllowsInPlace) {
  // A vector's linear layout is unchanged by transposition.
  auto R = compile("a = rand(1, 5);\nb = a';\ndisp(b);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  EXPECT_FALSE(IG.interferes(R.varNamed("a", 0), R.varNamed("b", 0)));
}

TEST(Interference, PhiCoalescingMergesWebs) {
  auto R = compile("k = 0;\nwhile k < 10\nk = k + 1;\nend\ndisp(k);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  // All SSA versions of k should share one color (coalesced web).
  int Color = -2;
  for (unsigned V = 0; V < F.numVars(); ++V) {
    if (F.var(V).Base != "k" || !IG.participates(static_cast<VarId>(V)))
      continue;
    if (Color == -2)
      Color = IG.colorOf(static_cast<VarId>(V));
    EXPECT_EQ(IG.colorOf(static_cast<VarId>(V)), Color)
        << "k web split: " << F.var(V).Name;
  }
}

TEST(Interference, CoalescingRespectsInterference) {
  // s1 and t2 from the paper's section 2.2 pattern: a copy whose source
  // and destination interfere must not be merged. After SSA + copyprop
  // the equivalent check: interfering phi operands stay separate colors.
  auto R = compile("a = rand(2, 2);\nb = rand(2, 2);\nc = a * b;\n"
                   "disp(c);\ndisp(a);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId C = R.varNamed("c", 0);
  EXPECT_NE(IG.colorOf(A), IG.colorOf(C));
}

TEST(Interference, ColoringIsProper) {
  auto R = compile("a = rand(3, 3);\nb = a + 1;\nc = a .* b;\nd = c * c;\n"
                   "disp(d);\ndisp(b);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  for (unsigned U = 0; U < F.numVars(); ++U)
    for (unsigned V = U + 1; V < F.numVars(); ++V) {
      if (!IG.participates(U) || !IG.participates(V))
        continue;
      if (IG.interferes(U, V)) {
        EXPECT_NE(IG.colorOf(U), IG.colorOf(V));
      }
    }
}

//===----------------------------------------------------------------------===//
// Phase 2: decomposition
//===----------------------------------------------------------------------===//

TEST(StoragePlanTest, Example1AllShareOneStorage) {
  // Paper Example 1: t1 = t0-1.345; t2 = 2.788.*t1; t3 = tan(t2) -- all
  // four bind to common storage (one group), with no resizing needed.
  auto R = compile("t0 = rand(6, 6);\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\n"
                   "t3 = tan(t2);\ndisp(t3);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId T0 = R.varNamed("t0", 0);
  VarId T1 = R.varNamed("t1", 0);
  VarId T2 = R.varNamed("t2", 0);
  VarId T3 = R.varNamed("t3", 0);
  EXPECT_TRUE(Plan.sameSlot(T0, T1)) << Plan.str(F);
  EXPECT_TRUE(Plan.sameSlot(T1, T2)) << Plan.str(F);
  EXPECT_TRUE(Plan.sameSlot(T2, T3)) << Plan.str(F);
}

TEST(StoragePlanTest, Example2SubsasgnSharesStorage) {
  // Paper Example 2: a = eye(x, y); b = subsasgn(a, 1, i1, i2) -- a and b
  // share storage (b formed in place, growing only).
  auto R = compile("a = eye(5, 5);\na(7, 2) = 1;\ndisp(a);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A0 = R.varNamed("a", 0);
  VarId A1 = R.varNamed("a", 1);
  EXPECT_TRUE(Plan.sameSlot(A0, A1)) << Plan.str(F);
}

TEST(StoragePlanTest, Example2SymbolicShapes) {
  // The same with symbolic sizes flowing through a function boundary.
  auto R = compile("function main\nn = round(rand() * 5) + 3;\n"
                   "x = work(n);\ndisp(x);\n\n"
                   "function a = work(n)\na = eye(n, n);\n"
                   "a(n + 2, 1) = 1;\n");
  Function &F = R.fn("work");
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A0 = R.varNamed("a", 0, "work");
  VarId A1 = R.varNamed("a", 1, "work");
  ASSERT_NE(A0, NoVar);
  ASSERT_NE(A1, NoVar);
  EXPECT_TRUE(Plan.sameSlot(A0, A1)) << Plan.str(F);
  int G = Plan.groupOf(A0);
  ASSERT_GE(G, 0);
  EXPECT_EQ(Plan.Groups[G].K, StorageGroup::Kind::Heap);
}

TEST(StoragePlanTest, MixedEstimabilityNeverShares) {
  // "a and b won't share the same storage ... if the size of only one of
  // them can be statically estimated."
  auto R = compile("function main\nn = round(rand() * 5) + 2;\n"
                   "x = work(n);\ndisp(x);\n\n"
                   "function c = work(n)\na = zeros(4, 4);\ndisp(a);\n"
                   "c = rand(n, n);\n");
  Function &F = R.fn("work");
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A = R.varNamed("a", 0, "work");
  VarId C = R.varNamed("c", 0, "work");
  ASSERT_NE(A, NoVar);
  ASSERT_NE(C, NoVar);
  EXPECT_FALSE(Plan.sameSlot(A, C)) << Plan.str(F);
}

TEST(StoragePlanTest, DifferentIntrinsicTypesNeverShare) {
  // zeros() is BOOLEAN-typed, rand() REAL: no shared storage even when
  // live ranges are disjoint.
  auto R = compile("a = zeros(4, 4);\ndisp(a);\nb = rand(4, 4);\n"
                   "disp(b);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  EXPECT_FALSE(Plan.sameSlot(A, B)) << Plan.str(F);
}

TEST(StoragePlanTest, StackGroupSizedByMaximal) {
  // Two disjoint same-typed arrays share a stack slot sized by the larger.
  auto R = compile("a = rand(2, 2);\ndisp(a);\nb = rand(4, 4);\n"
                   "disp(b);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  ASSERT_TRUE(Plan.sameSlot(A, B)) << Plan.str(F);
  int G = Plan.groupOf(A);
  EXPECT_EQ(Plan.Groups[G].K, StorageGroup::Kind::Stack);
  EXPECT_EQ(Plan.Groups[G].StackBytes, 4 * 4 * 8);
  EXPECT_EQ(Plan.Groups[G].Maximal, B);
}

TEST(StoragePlanTest, Table2StatsCountSubsumption) {
  auto R = compile("a = rand(2, 2);\ndisp(a);\nb = rand(4, 4);\n"
                   "disp(b);\nc = rand(3, 3);\ndisp(c);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  // a, b, c share one stack group: two variables subsumed; reduction is
  // size(a) + size(c) bytes.
  EXPECT_GE(Plan.StaticSubsumed, 2u);
  EXPECT_GE(Plan.StaticReductionBytes, (4 + 9) * 8);
  EXPECT_EQ(Plan.DynamicSubsumed, 0u);
}

TEST(StoragePlanTest, FrameLayoutNonOverlapping) {
  auto R = compile("a = rand(2, 2);\nb = a * a;\nc = b + a;\ndisp(c);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  // Stack groups must occupy disjoint, aligned frame ranges.
  for (size_t I = 0; I < Plan.Groups.size(); ++I) {
    const StorageGroup &GI = Plan.Groups[I];
    if (GI.K != StorageGroup::Kind::Stack)
      continue;
    EXPECT_EQ(GI.FrameOffset % 16, 0);
    EXPECT_LE(GI.FrameOffset + GI.StackBytes, Plan.FrameBytes);
    for (size_t J = I + 1; J < Plan.Groups.size(); ++J) {
      const StorageGroup &GJ = Plan.Groups[J];
      if (GJ.K != StorageGroup::Kind::Stack)
        continue;
      bool Disjoint = GI.FrameOffset + GI.StackBytes <= GJ.FrameOffset ||
                      GJ.FrameOffset + GJ.StackBytes <= GI.FrameOffset;
      EXPECT_TRUE(Disjoint);
    }
  }
}

TEST(StoragePlanTest, NonOptimalityExampleFromSection5) {
  // The paper's A/B/C example: sizes 4, 2, 3 units; only edge A--B. The
  // greedy minimal coloring may pick either B+C or A+C together; either
  // way the plan must be proper (interfering vars in different groups).
  auto R = compile("a = rand(1, 4);\nb = rand(1, 2);\nx = a(1) + b(1);\n"
                   "disp(x);\nc = rand(1, 3);\ndisp(c);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  EXPECT_FALSE(Plan.sameSlot(A, B)) << Plan.str(F);
}

TEST(StoragePlanTest, IdentityPlanGivesEveryVarItsOwnGroup) {
  auto R = compile("a = rand(2, 2);\nb = a + 1;\nc = b .* 2;\ndisp(c);\n");
  Function &F = R.fn();
  StoragePlan Plan = makeIdentityPlan(F, *R.TI);
  for (const StorageGroup &G : Plan.Groups)
    EXPECT_EQ(G.Members.size(), 1u);
  EXPECT_EQ(Plan.StaticSubsumed, 0u);
  EXPECT_EQ(Plan.DynamicSubsumed, 0u);
}

TEST(StoragePlanTest, GCTDNeverSharesInterferingVars) {
  // Property sweep over a composite program.
  auto R = compile("n = 6;\na = rand(n, n);\nb = rand(n, n);\nc = a * b;\n"
                   "d = c + a;\ne = d';\nf = e(:, 1);\ndisp(f);\n"
                   "disp(b);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  StoragePlan Plan = decomposeColorClasses(F, IG, *R.TI);
  for (unsigned U = 0; U < F.numVars(); ++U)
    for (unsigned V = U + 1; V < F.numVars(); ++V) {
      if (!IG.participates(U) || !IG.participates(V))
        continue;
      if (IG.interferes(U, V)) {
        EXPECT_FALSE(Plan.sameSlot(U, V))
            << F.var(U).Name << " and " << F.var(V).Name << " share a slot "
            << "but interfere\n"
            << Plan.str(F);
      }
    }
}

TEST(StoragePlanTest, SizeWeightedColoringPacksLikeSection5) {
  // The paper's section 5 example: sizes 4, 2, 3 units with only A--B
  // interfering. A minimal coloring that puts B and C together costs 7
  // units; A and C together costs 6. The size-weighted greedy must find
  // the 6-unit packing (A with C).
  auto R = compile("a = rand(1, 4);\nb = rand(1, 2);\n"
                   "x = a(1) + b(1);\ndisp(x);\nc = rand(1, 3);\n"
                   "disp(c);\n");
  Function &F = R.fn();
  StoragePlan Weighted =
      runGCTDWith(F, *R.TI, true, ColoringStrategy::SizeWeighted);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  VarId C = R.varNamed("c", 0);
  ASSERT_NE(A, NoVar);
  ASSERT_NE(B, NoVar);
  ASSERT_NE(C, NoVar);
  EXPECT_TRUE(Weighted.sameSlot(A, C)) << Weighted.str(F);
  EXPECT_FALSE(Weighted.sameSlot(A, B)) << Weighted.str(F);
  // Aggregate stack bytes for a, b, c: 4 + 2 doubles <= lexical's worst
  // case of 4 + 3 + ... -- check the combined group sizes directly.
  std::int64_t SumABC = 0;
  std::set<int> Groups = {Weighted.groupOf(A), Weighted.groupOf(B),
                          Weighted.groupOf(C)};
  for (int G : Groups)
    SumABC += Weighted.Groups[G].StackBytes;
  EXPECT_EQ(SumABC, (4 + 2) * 8) << Weighted.str(F);
}

TEST(StoragePlanTest, ColoringStrategiesAllProduceValidPlans) {
  auto R = compile("n = 6;\na = rand(n, n);\nb = a * a;\nc = b + a;\n"
                   "d = c(:, 1);\ndisp(sum(d));\n");
  Function &F = R.fn();
  for (ColoringStrategy S :
       {ColoringStrategy::Lexical, ColoringStrategy::Affinity,
        ColoringStrategy::SizeWeighted}) {
    InterferenceGraph IG(F, *R.TI, true, S);
    StoragePlan Plan = decomposeColorClasses(F, IG, *R.TI);
    for (unsigned U = 0; U < F.numVars(); ++U)
      for (unsigned V = U + 1; V < F.numVars(); ++V) {
        if (!IG.participates(U) || !IG.participates(V))
          continue;
        if (IG.interferes(U, V)) {
          EXPECT_FALSE(Plan.sameSlot(U, V)) << "strategy broke the plan";
        }
      }
  }
}

TEST(StoragePlanTest, LoopTemporariesReuseStorage) {
  // Elementwise loop body: temporaries should coalesce into few groups.
  auto R = compile("u = rand(1, 50);\nfor k = 1:100\n"
                   "u = u + 0.1 .* (1 - u);\nend\ndisp(u);\n");
  Function &F = R.fn();
  StoragePlan Plan = runGCTD(F, *R.TI);
  // Count groups holding 50-element REAL arrays: the u web and the
  // elementwise temporaries should share.
  unsigned BigGroups = 0;
  for (const StorageGroup &G : Plan.Groups)
    if (G.K == StorageGroup::Kind::Stack && G.StackBytes >= 50 * 8)
      ++BigGroups;
  EXPECT_LE(BigGroups, 2u) << Plan.str(F);
}

//===----------------------------------------------------------------------===//
// Partial interference (section 2.1, future work)
//===----------------------------------------------------------------------===//

TEST(PartialInterference, DetectsThePaperExample) {
  // Section 2.1: a and b fully interfere, yet only a(1) is read after b's
  // definition -- five doubles would suffice. The analysis must find the
  // pair and the savable bytes: a is 2x2 (32 B), one element needed, b is
  // 32 B, so min(32 - 8, 32) = 24 bytes.
  auto R = compile("a = rand(2, 2);\nb = rand(2, 2);\nc = a(1);\n"
                   "d = b + c;\ndisp(d);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  PartialInterferenceReport Rep =
      analyzePartialInterference(F, IG, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  ASSERT_NE(A, NoVar);
  ASSERT_NE(B, NoVar);
  bool Found = false;
  for (const auto &C : Rep.Candidates)
    if (C.Reduced == A && C.Other == B) {
      Found = true;
      EXPECT_EQ(C.ReducedBytes, 32);
      EXPECT_EQ(C.NeededBytes, 8);
      EXPECT_EQ(C.SavableBytes, 24);
    }
  EXPECT_TRUE(Found) << "the section 2.1 example was not detected";
  EXPECT_GE(Rep.TotalSavableBytes, 24);
}

TEST(PartialInterference, NoCandidateWhenFullyRead) {
  // Reading all of a after b's definition leaves nothing to overlap.
  auto R = compile("a = rand(2, 2);\nb = rand(2, 2);\nd = b + a;\n"
                   "disp(d);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  PartialInterferenceReport Rep =
      analyzePartialInterference(F, IG, *R.TI);
  VarId A = R.varNamed("a", 0);
  VarId B = R.varNamed("b", 0);
  for (const auto &C : Rep.Candidates) {
    EXPECT_FALSE(C.Reduced == A && C.Other == B);
    EXPECT_FALSE(C.Reduced == B && C.Other == A);
  }
}

TEST(PartialInterference, DynamicShapesAreSkipped) {
  auto R = compile("function main\nn = round(rand() * 4) + 2;\n"
                   "disp(work(n));\n\nfunction d = work(n)\n"
                   "a = rand(n, n);\nb = rand(n, n);\nc = a(1);\n"
                   "d = b + c;\n");
  Function &F = R.fn("work");
  InterferenceGraph IG(F, *R.TI);
  PartialInterferenceReport Rep =
      analyzePartialInterference(F, IG, *R.TI);
  EXPECT_TRUE(Rep.Candidates.empty());
}

// Section 3.2.1: "all statically estimable sizes of the same intrinsic
// type within a color class form a single chain" -- so phase 2 must
// produce at most one stack group per (color class, intrinsic type).
TEST(StoragePlanTest, OneStackGroupPerClassAndType) {
  auto R = compile("a = rand(2, 2);\nb = a + 1;\nc = rand(3, 3);\n"
                   "d = c .* 2;\ne = rand(4, 4);\nf = e - 1;\n"
                   "disp(b);\ndisp(d);\ndisp(f);\n");
  Function &F = R.fn();
  InterferenceGraph IG(F, *R.TI);
  StoragePlan Plan = decomposeColorClasses(F, IG, *R.TI);
  // Map (color, IT) -> number of stack groups.
  std::map<std::pair<int, int>, int> Count;
  for (size_t GI = 0; GI < Plan.Groups.size(); ++GI) {
    const StorageGroup &G = Plan.Groups[GI];
    if (G.K != StorageGroup::Kind::Stack || G.Members.empty())
      continue;
    int Color = IG.colorOf(G.Members.front());
    ++Count[{Color, static_cast<int>(G.IT)}];
  }
  for (const auto &[Key, N] : Count)
    EXPECT_EQ(N, 1) << "color " << Key.first << " has " << N
                    << " stack groups of one type";
}

} // namespace
