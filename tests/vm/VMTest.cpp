//===- VMTest.cpp - VM execution and metering tests -----------------------===//

#include "vm/VM.h"

#include "driver/Compiler.h"
#include "runtime/Memory.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::unique_ptr<CompiledProgram> compileOK(const std::string &Src) {
  Diagnostics Diags;
  auto P = compileSource(Src, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

//===----------------------------------------------------------------------===//
// MemoryMeter semantics
//===----------------------------------------------------------------------===//

TEST(MemoryMeter, TimeWeightedAverage) {
  MemoryMeter M;
  // 10 ticks at heap 0, then 10 ticks at heap 1000.
  M.advance(10);
  M.heapAdjust(1000);
  M.advance(10);
  MemoryStats S = M.finish();
  EXPECT_DOUBLE_EQ(S.AvgHeapBytes, 500.0);
  EXPECT_EQ(S.PeakHeapBytes, 1000);
  EXPECT_EQ(S.Ticks, 20u);
}

TEST(MemoryMeter, StackSegmentGrowsInPagesAndNeverShrinks) {
  MemoryMeter M;
  EXPECT_EQ(M.stackSegment(), MemoryMeter::InitialStackSeg);
  M.stackAdjust(100); // Still within the first page + initial.
  std::int64_t AfterSmall = M.stackSegment();
  EXPECT_EQ(AfterSmall % MemoryMeter::PageSize, 0);
  M.stackAdjust(3 * MemoryMeter::PageSize);
  std::int64_t AfterBig = M.stackSegment();
  EXPECT_GT(AfterBig, AfterSmall);
  // Popping the frame does not shrink the segment (high watermark).
  M.stackAdjust(-3 * MemoryMeter::PageSize);
  EXPECT_EQ(M.stackSegment(), AfterBig);
}

TEST(MemoryMeter, Eq2WeightsRapidFluctuations) {
  MemoryMeter M;
  // Spike to 1 MB for one tick within 99 idle ticks: the average must be
  // dominated by the idle level.
  M.advance(50);
  M.heapAdjust(1 << 20);
  M.advance(1);
  M.heapAdjust(-(1 << 20));
  M.advance(49);
  MemoryStats S = M.finish();
  EXPECT_LT(S.AvgHeapBytes, (1 << 20) / 50.0);
  EXPECT_EQ(S.PeakHeapBytes, 1 << 20);
}

//===----------------------------------------------------------------------===//
// Execution semantics and metering invariants
//===----------------------------------------------------------------------===//

TEST(VMExec, HeapReturnsToZeroAfterRun) {
  auto P = compileOK("a = rand(32, 32);\nb = a * a;\ndisp(sum(b(:)));\n");
  // Both models release everything at frame pop; the meter's final level
  // is visible through a second run producing identical stats.
  ExecResult R1 = P->runMcc();
  ExecResult R2 = P->runMcc();
  ASSERT_TRUE(R1.OK && R2.OK);
  EXPECT_DOUBLE_EQ(R1.Mem.AvgHeapBytes, R2.Mem.AvgHeapBytes);
  EXPECT_EQ(R1.Mem.PeakHeapBytes, R2.Mem.PeakHeapBytes);
  EXPECT_EQ(R1.Output, R2.Output);
}

TEST(VMExec, DeterministicAcrossRepetition) {
  auto P = compileOK("x = rand(4, 4);\nfprintf('%.9f ', x(1, 1));\n");
  ExecResult A = P->runStatic();
  ExecResult B = P->runStatic();
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Ops, B.Ops);
}

TEST(VMExec, SeedChangesStream) {
  auto P = compileOK("fprintf('%.9f', rand());\n");
  ExecResult A = P->runStatic(1);
  ExecResult B = P->runStatic(2);
  EXPECT_NE(A.Output, B.Output);
}

TEST(VMExec, MccBoxesCostMoreHeapThanStatic) {
  // Scalar-heavy loop: every mcc op is an 88-byte-headed box.
  auto P = compileOK("s = 0;\nfor i = 1:200\ns = s + i * i;\nend\n"
                     "disp(s);\n");
  ExecResult Mcc = P->runMcc();
  ExecResult St = P->runStatic();
  ASSERT_TRUE(Mcc.OK && St.OK);
  EXPECT_GT(Mcc.Mem.AvgHeapBytes, 0.0);
  // The static model keeps these scalars in the stack frame.
  EXPECT_EQ(St.Mem.PeakHeapBytes, 0);
}

TEST(VMExec, StaticStackHoldsFrameForWholeCall) {
  auto P = compileOK("a = rand(64, 64);\ndisp(a(1, 1));\n");
  ExecResult St = P->runStatic();
  ASSERT_TRUE(St.OK);
  // 64*64*8 = 32 KB must be visible in the stack segment.
  EXPECT_GE(St.Mem.PeakStackSegBytes, 32 * 1024);
}

TEST(VMExec, RecursionPushesFrames) {
  auto P = compileOK(
      "function main\ndisp(depth(40));\n\n"
      "function d = depth(n)\nif n <= 0\nd = 0;\nelse\n"
      "d = depth(n - 1) + 1;\nend\n");
  ExecResult St = P->runStatic();
  ASSERT_TRUE(St.OK);
  EXPECT_EQ(St.Output, "40\n");
  // 40 nested frames with ~256B overhead each: at least 2 extra pages.
  EXPECT_GE(St.Mem.PeakStackSegBytes, MemoryMeter::InitialStackSeg + 8192);
}

TEST(VMExec, InfiniteRecursionFails) {
  auto P = compileOK("function main\ndisp(f(1));\n\n"
                     "function y = f(x)\ny = f(x + 1);\n");
  ExecResult R = P->runStatic();
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("recursion"), std::string::npos);
}

TEST(VMExec, OpBudgetStopsRunawayLoops) {
  auto P = compileOK("k = 0;\nwhile 1\nk = k + 1;\nend\n");
  P->OpBudget = 10000;
  ExecResult R = P->runStatic();
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(VMExec, GCTDExecutesInPlace) {
  // Paper Example 1's chain must actually run in place under the GCTD
  // plan; the mcc model never does.
  auto P = compileOK("t0 = rand(16, 16);\nt1 = t0 - 1.345;\n"
                     "t2 = 2.788 .* t1;\nt3 = tan(t2);\n"
                     "disp(sum(sum(abs(t3))));\n");
  ExecResult St = P->runStatic();
  ExecResult Mcc = P->runMcc();
  ASSERT_TRUE(St.OK && Mcc.OK);
  EXPECT_GT(St.InPlaceOps, 0u);
  EXPECT_EQ(Mcc.InPlaceOps, 0u);
  // No coalescing, no aliasing, no in-place execution.
  ExecResult NoCo = P->runNoCoalesce();
  EXPECT_EQ(NoCo.InPlaceOps, 0u);
}

TEST(VMExec, HeapGroupsResizeOnTheFly) {
  // A growing dynamic array must show heap resizes (section 3.2.2).
  auto P = compileOK("function main\nn = round(rand() * 5) + 5;\n"
                     "disp(work(n));\n\nfunction s = work(n)\nv = [];\n"
                     "for k = 1:n\nv(k) = k;\nend\ns = sum(v);\n");
  ExecResult St = P->runStatic();
  ASSERT_TRUE(St.OK) << St.Error;
  EXPECT_GT(St.HeapResizes, 0u);
}

//===----------------------------------------------------------------------===//
// Failure injection: runtime errors must surface identically everywhere
//===----------------------------------------------------------------------===//

struct Failure {
  const char *Name;
  const char *Source;
  const char *ErrorSubstring;
};

class FailureTest : public ::testing::TestWithParam<Failure> {};

TEST_P(FailureTest, AllModelsFailTheSameWay) {
  Diagnostics Diags;
  auto P = compileSource(GetParam().Source, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();

  ExecResult Mcc = P->runMcc();
  ExecResult St = P->runStatic();
  InterpResult In = P->runInterp();

  EXPECT_FALSE(Mcc.OK);
  EXPECT_FALSE(St.OK);
  EXPECT_FALSE(In.OK);
  EXPECT_NE(Mcc.Error.find(GetParam().ErrorSubstring), std::string::npos)
      << Mcc.Error;
  EXPECT_NE(St.Error.find(GetParam().ErrorSubstring), std::string::npos)
      << St.Error;
  EXPECT_NE(In.Error.find(GetParam().ErrorSubstring), std::string::npos)
      << In.Error;
  // Output emitted before the fault must match too.
  EXPECT_EQ(Mcc.Output, In.Output);
  EXPECT_EQ(St.Output, In.Output);
}

const Failure Failures[] = {
    {"user_error",
     "disp('before');\nerror('custom failure %d', 7);\ndisp('after');\n",
     "custom failure 7"},
    {"index_out_of_bounds",
     "a = [1, 2, 3];\ndisp(a(1));\nx = a(9);\ndisp(x);\n",
     "exceeds array bounds"},
    {"shape_mismatch",
     "a = [1, 2, 3];\nb = [1; 2];\nc = a + b;\ndisp(c);\n",
     "dimensions must agree"},
    {"inner_dim_mismatch",
     "a = rand(2, 3);\nc = a * a;\ndisp(c);\n",
     "inner matrix dimensions"},
    {"singular_solve",
     "a = [1, 1; 1, 1];\nx = a \\ [1; 2];\ndisp(x);\n",
     "singular"},
    {"undefined_function",
     "x = 1;\ny = frobnicate(x);\ndisp(y);\n",
     "undefined function"},
    {"bad_subscript",
     "a = [1, 2, 3];\nx = a(1.5);\ndisp(x);\n",
     "positive integers"},
    {"matrix_linear_growth",
     "a = zeros(2, 2);\na(9) = 1;\ndisp(a);\n",
     "cannot grow"},
};

INSTANTIATE_TEST_SUITE_P(Faults, FailureTest, ::testing::ValuesIn(Failures),
                         [](const ::testing::TestParamInfo<Failure> &Info) {
                           return Info.param.Name;
                         });

} // namespace
