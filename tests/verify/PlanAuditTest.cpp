//===- PlanAuditTest.cpp - Static storage-plan auditor unit tests ---------===//
//
// Three layers of coverage for verify/PlanAudit:
//
//  * Hand-built plans: each matvet check fires on a plan constructed to
//    violate exactly its invariant (the two checks the plan-corrupt
//    fault provably cannot reach -- see the note in tests/lint/
//    LintTest.cpp -- are pinned here).
//  * The corruption helper: corruptStoragePlanForTesting produces a plan
//    the auditor must reject.
//  * The driver pipeline: an InjectPlanCorrupt compile degrades to
//    identity plans, surfaces auditDiags, and still computes the same
//    output as a clean compile.
//
//===----------------------------------------------------------------------===//

#include "verify/PlanAudit.h"

#include "analysis/AliasAnalysis.h"
#include "driver/Compiler.h"
#include "support/SymExpr.h"
#include "typeinf/TypeInference.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

Instr constant(VarId R, double V) {
  Instr I;
  I.Op = Opcode::ConstNum;
  I.Results = {R};
  I.NumRe = V;
  return I;
}

Instr binop(Opcode Op, VarId R, VarId A, VarId B) {
  Instr I;
  I.Op = Op;
  I.Results = {R};
  I.Operands = {A, B};
  I.Loc.Line = 1;
  return I;
}

Instr ret() {
  Instr I;
  I.Op = Opcode::Ret;
  return I;
}

/// An identity plan over F: every variable its own group.
StoragePlan identityPlan(const Function &F) {
  StoragePlan Plan;
  Plan.GroupOf.assign(F.numVars(), -1);
  for (unsigned V = 0; V < F.numVars(); ++V) {
    StorageGroup G;
    G.Members = {static_cast<VarId>(V)};
    Plan.GroupOf[V] = static_cast<int>(Plan.Groups.size());
    Plan.Groups.push_back(std::move(G));
  }
  return Plan;
}

bool hasRule(const std::vector<PlanAuditIssue> &Issues,
             const std::string &Rule) {
  for (const PlanAuditIssue &I : Issues)
    if (I.Rule == Rule)
      return true;
  return false;
}

struct Fixture {
  Module M;
  SymExprContext Ctx;
  Diagnostics Diags;
  TypeInference TI{M, Ctx, Diags};
};

// a = 1; b = 2; e = 5; c = a + b; f = e + e  -- e stays live across c's
// definition without being one of its operands, so planning c into e's
// slot is a pure occupancy clash (check (a)'s domain; an operand clash
// would route to unsafe-inplace instead).
TEST(PlanAuditHandBuilt, FlagsOverlapOfLiveValues) {
  Fixture Fx;
  Function &F = *Fx.M.addFunction("main");
  VarId A = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  VarId E = F.getOrCreateVar("e");
  VarId C = F.getOrCreateVar("c");
  VarId Fv = F.getOrCreateVar("f");
  BasicBlock *BB = F.addBlock();
  BB->Instrs = {constant(A, 1), constant(B, 2), constant(E, 5),
                binop(Opcode::Add, C, A, B), binop(Opcode::Add, Fv, E, E),
                ret()};
  F.recomputePreds();

  StoragePlan Plan = identityPlan(F);
  EXPECT_TRUE(auditStoragePlan(F, Plan, Fx.TI).empty());

  // Merge c into e's group: e's value is clobbered while the second add
  // still needs it.
  Plan.Groups[Plan.GroupOf[E]].Members.push_back(C);
  Plan.Groups[Plan.GroupOf[C]].Members.clear();
  Plan.GroupOf[C] = Plan.GroupOf[E];
  std::vector<PlanAuditIssue> Issues = auditStoragePlan(F, Plan, Fx.TI);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(hasRule(Issues, "plan-overlap"));
  // Provenance carries "line N (op)".
  EXPECT_NE(Issues[0].str().find("(add)"), std::string::npos);
}

// c = a * b (true matrix product): never formable over an operand's
// slot, even when the operand dies there.
TEST(PlanAuditHandBuilt, FlagsUnformableInPlaceRewrite) {
  Fixture Fx;
  Function &F = *Fx.M.addFunction("main");
  VarId A = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  VarId C = F.getOrCreateVar("c");
  BasicBlock *BB = F.addBlock();
  BB->Instrs = {constant(A, 1), constant(B, 2),
                binop(Opcode::MatMul, C, A, B), ret()};
  F.recomputePreds();

  StoragePlan Plan = identityPlan(F);
  // a is dead after the multiply, so occupancy accepts the merge; the
  // unsafe-inplace check must still reject it because a matrix product
  // reads its operands after writing result elements.
  Plan.Groups[Plan.GroupOf[A]].Members.push_back(C);
  Plan.Groups[Plan.GroupOf[C]].Members.clear();
  Plan.GroupOf[C] = Plan.GroupOf[A];
  std::vector<PlanAuditIssue> Issues = auditStoragePlan(F, Plan, Fx.TI);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(hasRule(Issues, "unsafe-inplace"));
}

// c = a + b with a still live afterwards: sharing c's slot with a is a
// destructive rewrite of a live source.
TEST(PlanAuditHandBuilt, FlagsInPlaceRewriteOfLiveSource) {
  Fixture Fx;
  Function &F = *Fx.M.addFunction("main");
  VarId A = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  VarId C = F.getOrCreateVar("c");
  VarId D = F.getOrCreateVar("d");
  BasicBlock *BB = F.addBlock();
  BB->Instrs = {constant(A, 1), constant(B, 2),
                binop(Opcode::Add, C, A, B), binop(Opcode::Sub, D, A, A),
                ret()};
  F.recomputePreds();

  StoragePlan Plan = identityPlan(F);
  Plan.Groups[Plan.GroupOf[A]].Members.push_back(C);
  Plan.Groups[Plan.GroupOf[C]].Members.clear();
  Plan.GroupOf[C] = Plan.GroupOf[A];
  std::vector<PlanAuditIssue> Issues = auditStoragePlan(F, Plan, Fx.TI);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(hasRule(Issues, "unsafe-inplace"));
}

// A fusion tree t = x + y; r = t + z admits t only while the def/use
// counts say single-use. Auditing with a STALE alias analysis (built
// before a second use of t was appended) models the admission/reality
// divergence check (c) exists to catch.
TEST(PlanAuditHandBuilt, FlagsMultiUseElisionViaStaleCounts) {
  Fixture Fx;
  Function &F = *Fx.M.addFunction("main");
  VarId X = F.getOrCreateVar("x");
  VarId Y = F.getOrCreateVar("y");
  VarId Z = F.getOrCreateVar("z");
  VarId T = F.getOrCreateVar("t");
  VarId R = F.getOrCreateVar("r");
  VarId S = F.getOrCreateVar("s");
  BasicBlock *BB = F.addBlock();
  BB->Instrs = {constant(X, 1), constant(Y, 2), constant(Z, 3),
                binop(Opcode::Add, T, X, Y), binop(Opcode::Add, R, T, Z),
                ret()};
  F.recomputePreds();
  StoragePlan Plan = identityPlan(F);

  AliasAnalysis AA(Fx.M, Fx.TI);
  // Clean function, fresh analysis: silent.
  EXPECT_TRUE(
      auditStoragePlan(F, Plan, Fx.TI, /*RA=*/nullptr, &AA).empty());

  // Append a second read of t without refreshing the analysis.
  BB->Instrs.insert(BB->Instrs.end() - 1, binop(Opcode::Sub, S, T, T));
  std::vector<PlanAuditIssue> Issues =
      auditStoragePlan(F, Plan, Fx.TI, /*RA=*/nullptr, &AA);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(hasRule(Issues, "multi-use-elide"));
  // A refreshed analysis sees the second use, stops admitting t, and the
  // audit is silent again.
  AA.refresh(F);
  EXPECT_TRUE(
      auditStoragePlan(F, Plan, Fx.TI, /*RA=*/nullptr, &AA).empty());
}

TEST(PlanAuditCorruption, CorruptorProducesARejectedPlan) {
  Diagnostics Diags;
  auto P = compileSource("n = 8;\n"
                         "A = rand(n, n);\n"
                         "B = A * A;\n"
                         "C = B + B;\n"
                         "D = C - A;\n"
                         "s = sum(sum(D));\n"
                         "fprintf('%.6f\\n', s);\n",
                         Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  const Function &F = P->function("main");
  StoragePlan Plan = P->planOf(F);
  const TypeInference &TI = P->types();
  ASSERT_TRUE(auditStoragePlan(F, Plan, TI).empty());
  ASSERT_TRUE(corruptStoragePlanForTesting(F, Plan));
  std::vector<PlanAuditIssue> Issues = auditStoragePlan(F, Plan, TI);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(hasRule(Issues, "plan-overlap"));
}

TEST(PlanAuditPipeline, InjectedCorruptionDegradesAndPreservesOutput) {
  const std::string Src = "n = 8;\n"
                          "A = rand(n, n);\n"
                          "B = A * A;\n"
                          "C = B + B;\n"
                          "D = C - A;\n"
                          "s = sum(sum(D));\n"
                          "fprintf('%.6f\\n', s);\n";
  Diagnostics CleanDiags;
  auto Clean = compileSource(Src, CleanDiags);
  ASSERT_NE(Clean, nullptr) << CleanDiags.str();
  EXPECT_TRUE(Clean->auditDiags().empty());
  EXPECT_EQ(Clean->Level, DegradeLevel::Full);

  CompileOptions Opts;
  Opts.InjectPlanCorrupt = true;
  Diagnostics Diags;
  auto P = compileSource(Src, Diags, Opts);
  ASSERT_NE(P, nullptr) << Diags.str();
  // The audit rejected the corrupted plan and the pipeline degraded to
  // identity plans rather than executing it.
  EXPECT_FALSE(P->auditDiags().empty());
  EXPECT_EQ(P->Level, DegradeLevel::IdentityPlans);
  // Degradation preserves semantics: byte-identical program output.
  ExecResult Corrupt = P->runStatic();
  ExecResult Good = Clean->runStatic();
  ASSERT_TRUE(Corrupt.OK) << Corrupt.Error;
  ASSERT_TRUE(Good.OK) << Good.Error;
  EXPECT_EQ(Corrupt.Output, Good.Output);
}

} // namespace
