//===- VerifierTest.cpp - Unit tests for the pipeline verifier ------------===//
//
// Each check is exercised twice: once on well-formed output of the real
// pipeline (must pass) and once on the same structures corrupted by hand
// (must fail with a message naming the violation). The storage-plan check
// additionally runs over every Table 1 benchmark program unmodified.
//
//===----------------------------------------------------------------------===//

#include "verify/Verifier.h"

#include "bench/programs/Programs.h"
#include "frontend/Parser.h"
#include "gctd/StoragePlan.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"
#include "typeinf/TypeInference.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace matcoal;

namespace {

/// Runs the pipeline up to (and including) type inference, leaving every
/// function in SSA form -- the state the verifier checks are defined on.
struct SSAProgram {
  std::unique_ptr<Program> Ast;
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
  Diagnostics Diags;

  Function &fn(const std::string &Name = "main") {
    Function *F = M->findFunction(Name);
    EXPECT_NE(F, nullptr) << "no function " << Name;
    return *F;
  }
};

SSAProgram compileToSSA(const std::string &Source) {
  SSAProgram P;
  P.Ast = parseProgram(Source, P.Diags);
  if (!P.Ast) {
    ADD_FAILURE() << "parse failed:\n" << P.Diags.str();
    return P;
  }
  P.M = lowerProgram(*P.Ast, P.Diags);
  if (!P.M) {
    ADD_FAILURE() << "lowering failed:\n" << P.Diags.str();
    return P;
  }
  for (auto &F : P.M->Functions) {
    EXPECT_TRUE(buildSSA(*F, P.Diags)) << P.Diags.str();
    runCleanupPipeline(*F);
  }
  P.Ctx = std::make_unique<SymExprContext>();
  P.TI = std::make_unique<TypeInference>(*P.M, *P.Ctx, P.Diags);
  P.TI->run("main");
  return P;
}

/// A hand-built single-block function: x = 1; ret.
Function makeStraightLine() {
  Function F;
  F.Name = "f";
  VarId X = F.getOrCreateVar("x");
  BasicBlock *B = F.addBlock();
  Instr C;
  C.Op = Opcode::ConstNum;
  C.Results = {X};
  C.NumRe = 1.0;
  B->Instrs.push_back(C);
  Instr Ret;
  Ret.Op = Opcode::Ret;
  B->Instrs.push_back(Ret);
  return F;
}

const char *LoopSource = "s = 0;\n"
                         "for i = 1:5\n"
                         "  s = s + i;\n"
                         "end\n"
                         "disp(s);\n";

// --- VerifierReport -----------------------------------------------------

TEST(VerifierReport, AccumulatesAndRenders) {
  Function F = makeStraightLine();
  VerifierReport R;
  EXPECT_TRUE(R.ok());
  R.add("cfg", F, "something is off");
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.issues().size(), 1u);
  EXPECT_EQ(R.issues()[0].str(), "[cfg] f: something is off");
  EXPECT_NE(R.str().find("something is off"), std::string::npos);
}

TEST(VerifierReport, ReportsAtRequestedSeverity) {
  Function F = makeStraightLine();
  VerifierReport R;
  R.add("ssa", F, "broken");
  Diagnostics AsWarnings;
  R.reportTo(AsWarnings, DiagLevel::Warning);
  EXPECT_FALSE(AsWarnings.hasErrors());
  ASSERT_EQ(AsWarnings.all().size(), 1u);
  Diagnostics AsErrors;
  R.reportTo(AsErrors);
  EXPECT_TRUE(AsErrors.hasErrors());
}

// --- verifyCFG ----------------------------------------------------------

TEST(VerifyCFG, AcceptsWellFormedFunction) {
  Function F = makeStraightLine();
  VerifierReport R;
  EXPECT_TRUE(verifyCFG(F, R)) << R.str();
}

TEST(VerifyCFG, RejectsMissingTerminator) {
  Function F = makeStraightLine();
  F.entry()->Instrs.pop_back();
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("does not end in a terminator"), std::string::npos);
}

TEST(VerifyCFG, RejectsEmptyBlock) {
  Function F = makeStraightLine();
  F.entry()->Instrs.back().Op = Opcode::Jmp;
  F.entry()->Instrs.back().Target1 = 1;
  F.addBlock(); // Left empty.
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("is empty"), std::string::npos);
}

TEST(VerifyCFG, RejectsTerminatorInMiddle) {
  Function F = makeStraightLine();
  Instr Ret;
  Ret.Op = Opcode::Ret;
  F.entry()->Instrs.insert(F.entry()->Instrs.begin(), Ret);
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("terminator in the middle"), std::string::npos);
}

TEST(VerifyCFG, RejectsBranchTargetOutOfRange) {
  Function F = makeStraightLine();
  F.entry()->Instrs.back().Op = Opcode::Jmp;
  F.entry()->Instrs.back().Target1 = 7;
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("branch target 7 out of range"), std::string::npos);
}

TEST(VerifyCFG, RejectsOperandOutOfRange) {
  Function F = makeStraightLine();
  Instr &C = F.entry()->Instrs.front();
  C.Op = Opcode::Copy;
  C.Operands = {99};
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("operand id 99 out of range"), std::string::npos);
}

TEST(VerifyCFG, RejectsStalePredecessorList) {
  Function F = makeStraightLine();
  F.entry()->Instrs.back().Op = Opcode::Jmp;
  F.entry()->Instrs.back().Target1 = 1;
  BasicBlock *B1 = F.addBlock();
  Instr Ret;
  Ret.Op = Opcode::Ret;
  B1->Instrs.push_back(Ret);
  // Deliberately skip recomputePreds: b1's Preds stay empty.
  VerifierReport R;
  EXPECT_FALSE(verifyCFG(F, R));
  EXPECT_NE(R.str().find("predecessor list"), std::string::npos);

  F.recomputePreds();
  VerifierReport R2;
  EXPECT_TRUE(verifyCFG(F, R2)) << R2.str();
}

// --- verifySSA ----------------------------------------------------------

TEST(VerifySSA, AcceptsPipelineOutput) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  VerifierReport R;
  EXPECT_TRUE(verifyCFG(P.fn(), R)) << R.str();
  EXPECT_TRUE(verifySSA(P.fn(), R)) << R.str();
}

TEST(VerifySSA, RejectsDuplicateDefinition) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  // Re-define the first entry-block result a second time, right before
  // the entry terminator.
  VarId Victim = NoVar;
  for (const Instr &In : F.entry()->Instrs)
    if (In.hasResult()) {
      Victim = In.Results[0];
      break;
    }
  ASSERT_NE(Victim, NoVar);
  Instr Dup;
  Dup.Op = Opcode::ConstNum;
  Dup.Results = {Victim};
  auto &Instrs = F.entry()->Instrs;
  Instrs.insert(Instrs.end() - 1, Dup);
  VerifierReport R;
  EXPECT_FALSE(verifySSA(F, R));
  EXPECT_NE(R.str().find("definitions"), std::string::npos);
}

TEST(VerifySSA, RejectsUseOfUndefinedVariable) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  VarId Ghost = F.makeTemp("ghost"); // Never defined anywhere.
  bool Patched = false;
  for (auto &BB : F.Blocks) {
    for (Instr &In : BB->Instrs) {
      if (In.Op == Opcode::Phi || In.Operands.empty())
        continue;
      In.Operands[0] = Ghost;
      Patched = true;
      break;
    }
    if (Patched)
      break;
  }
  ASSERT_TRUE(Patched);
  VerifierReport R;
  EXPECT_FALSE(verifySSA(F, R));
  EXPECT_NE(R.str().find("use of undefined variable"), std::string::npos);
}

TEST(VerifySSA, RejectsDefThatDoesNotDominateUse) {
  // The body computes t <- i * i; s' <- s + t: an adjacent def/use chain.
  SSAProgram P = compileToSSA("s = 0;\n"
                              "for i = 1:5\n"
                              "  s = s + i * i;\n"
                              "end\n"
                              "disp(s);\n");
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  // Swap an adjacent def/use pair so the use comes first.
  bool Swapped = false;
  for (auto &BB : F.Blocks) {
    auto &Ins = BB->Instrs;
    for (size_t I = 0; I + 1 < Ins.size() && !Swapped; ++I) {
      if (!Ins[I].hasResult() || Ins[I + 1].Op == Opcode::Phi ||
          isTerminator(Ins[I + 1].Op))
        continue;
      VarId D = Ins[I].Results[0];
      for (VarId Op : Ins[I + 1].Operands)
        if (Op == D) {
          std::swap(Ins[I], Ins[I + 1]);
          Swapped = true;
          break;
        }
    }
    if (Swapped)
      break;
  }
  ASSERT_TRUE(Swapped) << "no adjacent def/use pair found";
  VerifierReport R;
  EXPECT_FALSE(verifySSA(F, R));
  EXPECT_NE(R.str().find("does not dominate"), std::string::npos);
}

TEST(VerifySSA, RejectsPhiArityMismatch) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  bool Found = false;
  for (auto &BB : F.Blocks)
    for (Instr &In : BB->Instrs)
      if (In.Op == Opcode::Phi && !Found) {
        ASSERT_GE(In.Operands.size(), 2u);
        In.Operands.pop_back();
        Found = true;
      }
  ASSERT_TRUE(Found) << "loop source produced no phi";
  VerifierReport R;
  EXPECT_FALSE(verifySSA(F, R));
  EXPECT_NE(R.str().find("operands for"), std::string::npos);
}

TEST(VerifySSA, RejectsPhiAfterNonPhi) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  // Move a phi one slot down, behind whatever follows it.
  bool Moved = false;
  for (auto &BB : F.Blocks) {
    auto &Ins = BB->Instrs;
    for (size_t I = 0; I + 1 < Ins.size(); ++I)
      if (Ins[I].Op == Opcode::Phi && Ins[I + 1].Op != Opcode::Phi &&
          !isTerminator(Ins[I + 1].Op)) {
        std::swap(Ins[I], Ins[I + 1]);
        Moved = true;
        break;
      }
    if (Moved)
      break;
  }
  ASSERT_TRUE(Moved);
  VerifierReport R;
  EXPECT_FALSE(verifySSA(F, R));
  EXPECT_NE(R.str().find("phi after a non-phi"), std::string::npos);
}

// --- verifyTypes --------------------------------------------------------

TEST(VerifyTypes, AcceptsPipelineOutput) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  VerifierReport R;
  EXPECT_TRUE(verifyTypes(P.fn(), *P.TI, R)) << R.str();
}

TEST(VerifyTypes, RejectsFunctionWithoutInferenceResults) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function Orphan = makeStraightLine(); // TI has never seen it.
  VerifierReport R;
  EXPECT_FALSE(verifyTypes(Orphan, *P.TI, R));
  EXPECT_NE(R.str().find("no inference results"), std::string::npos);
}

TEST(VerifyTypes, RejectsTypeTableSizeMismatch) {
  SSAProgram P = compileToSSA(LoopSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  F.makeTemp("late"); // Grows the variable table past the type table.
  VerifierReport R;
  EXPECT_FALSE(verifyTypes(F, *P.TI, R));
  EXPECT_NE(R.str().find("type table has"), std::string::npos);
}

// --- verifyStoragePlan --------------------------------------------------

/// Source for the canonical clobber scenario: a stays live across the
/// definition of b, so their groups must stay distinct.
const char *ClobberSource = "a = rand(3);\n"
                            "b = a + 1;\n"
                            "disp(a(1, 1));\n"
                            "disp(b(1, 1));\n";

/// Finds the SSA variable whose source-level base is \p Base and which is
/// mapped to a storage group in \p Plan.
VarId findPlannedVar(const Function &F, const StoragePlan &Plan,
                     const std::string &Base) {
  for (unsigned V = 0; V < F.numVars(); ++V)
    if (F.var(V).Base == Base && Plan.groupOf(V) >= 0)
      return static_cast<VarId>(V);
  return NoVar;
}

TEST(VerifyStoragePlan, AcceptsGCTDOutput) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Plan = runGCTD(F, *P.TI);
  VerifierReport R;
  EXPECT_TRUE(verifyStoragePlan(F, *P.TI, Plan, R)) << R.str();
}

TEST(VerifyStoragePlan, RejectsMergedInterferingGroups) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Plan = runGCTD(F, *P.TI);
  VarId A = findPlannedVar(F, Plan, "a");
  VarId B = findPlannedVar(F, Plan, "b");
  ASSERT_NE(A, NoVar);
  ASSERT_NE(B, NoVar);
  int Ga = Plan.groupOf(A);
  int Gb = Plan.groupOf(B);
  ASSERT_NE(Ga, Gb) << "GCTD merged interfering variables";

  // Corrupt the plan: force b into a's slot even though both are live.
  StoragePlan Bad = Plan;
  Bad.GroupOf[B] = Ga;
  Bad.Groups[Ga].Members.push_back(B);
  auto &GbMembers = Bad.Groups[Gb].Members;
  GbMembers.erase(std::find(GbMembers.begin(), GbMembers.end(), B));

  VerifierReport R;
  EXPECT_FALSE(verifyStoragePlan(F, *P.TI, Bad, R));
  EXPECT_NE(R.str().find("simultaneously live"), std::string::npos)
      << R.str();
}

TEST(VerifyStoragePlan, RejectsGroupTableSizeMismatch) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Bad = runGCTD(F, *P.TI);
  Bad.GroupOf.pop_back();
  VerifierReport R;
  EXPECT_FALSE(verifyStoragePlan(F, *P.TI, Bad, R));
  EXPECT_NE(R.str().find("GroupOf table"), std::string::npos);
}

TEST(VerifyStoragePlan, RejectsMaximalOutsideGroup) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Bad = runGCTD(F, *P.TI);
  ASSERT_FALSE(Bad.Groups.empty());
  Bad.Groups[0].Maximal = NoVar;
  VerifierReport R;
  EXPECT_FALSE(verifyStoragePlan(F, *P.TI, Bad, R));
  EXPECT_NE(R.str().find("maximal element is not a member"),
            std::string::npos);
}

TEST(VerifyStoragePlan, RejectsUndersizedStackSlot) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Bad = runGCTD(F, *P.TI);
  bool Shrunk = false;
  for (StorageGroup &G : Bad.Groups)
    if (G.K == StorageGroup::Kind::Stack && G.StackBytes > 8) {
      G.StackBytes = 1;
      Shrunk = true;
      break;
    }
  ASSERT_TRUE(Shrunk) << "rand(3) should produce a stack group";
  VerifierReport R;
  EXPECT_FALSE(verifyStoragePlan(F, *P.TI, Bad, R));
  EXPECT_NE(R.str().find("smaller than"), std::string::npos);
}

TEST(VerifyStoragePlan, RejectsSlotOutsideFrame) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Bad = runGCTD(F, *P.TI);
  bool Moved = false;
  for (StorageGroup &G : Bad.Groups)
    if (G.K == StorageGroup::Kind::Stack) {
      G.FrameOffset = Bad.FrameBytes; // Starts past the end of the frame.
      Moved = true;
      break;
    }
  ASSERT_TRUE(Moved);
  VerifierReport R;
  EXPECT_FALSE(verifyStoragePlan(F, *P.TI, Bad, R));
  EXPECT_NE(R.str().find("outside the"), std::string::npos);
}

TEST(VerifyStoragePlan, AcceptsIdentityPlan) {
  SSAProgram P = compileToSSA(ClobberSource);
  ASSERT_NE(P.M, nullptr);
  Function &F = P.fn();
  StoragePlan Identity = makeIdentityPlan(F, *P.TI);
  VerifierReport R;
  EXPECT_TRUE(verifyStoragePlan(F, *P.TI, Identity, R)) << R.str();
}

// Every Table 1 benchmark must verify clean through all four checks while
// still in SSA form -- the acceptance bar for the verifier having no false
// positives on the paper's own workload.
class BenchPlanVerify : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchPlanVerify, AllChecksPassUnmodified) {
  const BenchmarkProgram *Prog = findBenchmark(GetParam());
  ASSERT_NE(Prog, nullptr);
  SSAProgram P = compileToSSA(Prog->Source);
  ASSERT_NE(P.M, nullptr);
  for (auto &F : P.M->Functions) {
    VerifierReport R;
    EXPECT_TRUE(verifyCFG(*F, R)) << F->Name << ":\n" << R.str();
    EXPECT_TRUE(verifySSA(*F, R)) << F->Name << ":\n" << R.str();
    EXPECT_TRUE(verifyTypes(*F, *P.TI, R)) << F->Name << ":\n" << R.str();
    StoragePlan Plan = runGCTD(*F, *P.TI);
    EXPECT_TRUE(verifyStoragePlan(*F, *P.TI, Plan, R))
        << F->Name << ":\n" << R.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchPlanVerify,
    ::testing::Values("adpt", "capr", "clos", "crni", "diff", "dich",
                      "edit", "fdtd", "fiff", "nb1d", "nb3d"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

} // namespace
