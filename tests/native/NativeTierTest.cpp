//===- NativeTierTest.cpp - In-process native tier + artifact cache -------===//
//
// The native-tier contract, end to end (docs/EXECUTION_TIERS.md):
//
//  * Cold (cache miss) and warm (cache hit) native runs are byte-identical
//    to the static VM on every suite benchmark, and a warm engine never
//    invokes cc (native.compile_seconds == 0).
//  * The cache key is a content address: changing any emitter option that
//    changes the generated code (profiling hooks, fusion) changes the key;
//    recompiling the same source reproduces the same key.
//  * A corrupted on-disk artifact is rejected at load, evicted, and the
//    run degrades loudly to the VM -- output still byte-identical.
//  * One engine (and one cache) shared by concurrent matcoald-style
//    requests stays coherent: every response is byte-identical and the
//    suite sees exactly one compile per distinct program.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "native/NativeEngine.h"
#include "service/Service.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace matcoal;

namespace {

/// Fresh cache directory per test so tests cannot warm each other.
std::string freshCacheDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string Dir = ::testing::TempDir() + "/matcoal_native_" + Tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(Counter++);
  return Dir;
}

std::unique_ptr<CompiledProgram> compileBench(const std::string &Name,
                                              Observer *Obs = nullptr) {
  const BenchmarkProgram *BP = findBenchmark(Name);
  EXPECT_NE(BP, nullptr) << Name;
  Diagnostics Diags;
  CompileOptions Opts;
  Opts.Obs = Obs;
  auto P = compileSource(BP->Source, Diags, Opts);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

bool nativeDegradedRemark(const Observer &Obs) {
  for (const Remark &R : Obs.Remarks)
    if (R.Pass == "native" && R.Kind == RemarkKind::Degraded)
      return true;
  return false;
}

class NativeSuiteTest : public ::testing::TestWithParam<std::string> {};

// Cold compile-and-run, then a warm run from the same engine (memory
// hit), then a warm run from a second engine over the same directory
// (disk hit): all three byte-identical to the VM, and only the first
// pays a cc invocation.
TEST_P(NativeSuiteTest, ColdAndWarmRunsMatchVM) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  std::string Dir = freshCacheDir("suite");

  Observer Obs;
  auto P = compileBench(GetParam(), &Obs);
  ASSERT_NE(P, nullptr);
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK) << VM.Error;

  NativeEngine Engine(Dir);
  ExecResult Cold = Engine.run(*P);
  ASSERT_TRUE(Cold.OK) << Cold.Error;
  EXPECT_EQ(Cold.Output, VM.Output) << "cold native run diverged";
  EXPECT_EQ(Obs.Stats.get("native.cache.misses"), 1);
  EXPECT_EQ(Obs.Stats.get("native.cache.hits"), 0);
  EXPECT_GE(Obs.Stats.get("native.compile_seconds"), 1)
      << "a cold compile must be visible in the counter";

  ExecResult Warm = Engine.run(*P);
  ASSERT_TRUE(Warm.OK) << Warm.Error;
  EXPECT_EQ(Warm.Output, VM.Output) << "warm native run diverged";
  EXPECT_EQ(Obs.Stats.get("native.cache.hits"), 1);
  EXPECT_EQ(Obs.Stats.get("native.cache.misses"), 1);

  // A second engine over the same directory models a daemon restart:
  // the artifact comes off disk, cc is never invoked.
  Observer Obs2;
  auto P2 = compileBench(GetParam(), &Obs2);
  ASSERT_NE(P2, nullptr);
  NativeEngine Engine2(Dir);
  ExecResult Disk = Engine2.run(*P2);
  ASSERT_TRUE(Disk.OK) << Disk.Error;
  EXPECT_EQ(Disk.Output, VM.Output) << "disk-hit native run diverged";
  EXPECT_EQ(Obs2.Stats.get("native.cache.hits"), 1);
  EXPECT_EQ(Obs2.Stats.get("native.cache.misses"), 0);
  EXPECT_EQ(Obs2.Stats.get("native.compile_seconds"), 0)
      << "a warm engine must never invoke cc";
}

INSTANTIATE_TEST_SUITE_P(Programs, NativeSuiteTest,
                         ::testing::Values("adpt", "capr", "clos", "crni",
                                           "diff", "dich", "edit", "fdtd",
                                           "fiff", "nb1d", "nb3d"),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

// The key is a pure content address: recompiling the identical source
// reproduces it (that is what makes the cache shareable across
// processes), and every code-changing emitter option perturbs it.
TEST(NativeCacheKeyTest, StableAcrossCompilesAndSensitiveToOptions) {
  NativeEngine Engine(freshCacheDir("key"));
  auto P1 = compileBench("crni");
  auto P2 = compileBench("crni");
  ASSERT_TRUE(P1 && P2);

  std::string Base = Engine.cacheKeyFor(*P1, false, false);
  EXPECT_EQ(Base, Engine.cacheKeyFor(*P2, false, false))
      << "identical source must reproduce the key";
  EXPECT_EQ(Base.size(), 32u) << "128-bit hex content address";

  EXPECT_NE(Base, Engine.cacheKeyFor(*P1, true, false))
      << "profiling hooks change the generated C, so the key";
  EXPECT_NE(Base, Engine.cacheKeyFor(*P1, false, true))
      << "fusion changes the generated C, so the key";
  auto POther = compileBench("clos");
  ASSERT_NE(POther, nullptr);
  EXPECT_NE(Base, Engine.cacheKeyFor(*POther, false, false));
}

// The address must be collision-resistant (matcoald hashes untrusted
// source), so it is pinned to real SHA-256: the FIPS 180-4 test vectors,
// truncated to the leading 128 bits.
TEST(NativeCacheKeyTest, ContentAddressIsTruncatedSha256) {
  EXPECT_EQ(ArtifactCache::contentAddress(""),
            "e3b0c44298fc1c149afbf4c8996fb924");
  EXPECT_EQ(ArtifactCache::contentAddress("abc"),
            "ba7816bf8f01cfea414140de5dae2223");
  // Spans the 64-byte block boundary (448 bits of input).
  EXPECT_EQ(ArtifactCache::contentAddress(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039");
}

// Corrupt the on-disk .so, drop the memory index, run: the load is
// rejected, the artifact evicted, the run degrades loudly to the VM, and
// output stays byte-identical. The *next* run recompiles cleanly.
TEST(NativeCorruptionTest, CorruptArtifactEvictedAndRunDegradesToVM) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  std::string Dir = freshCacheDir("corrupt");

  Observer Obs;
  auto P = compileBench("crni", &Obs);
  ASSERT_NE(P, nullptr);
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK);

  NativeEngine Engine(Dir);
  ASSERT_TRUE(Engine.run(*P).OK);

  std::string Key = Engine.cacheKeyFor(*P, false, false);
  std::string SoPath = Engine.cache().soPathFor(Key);
  // Unload first (dlclose), THEN corrupt: truncating a still-mapped .so
  // invites SIGBUS from the mapping, which is not the scenario -- this
  // models a daemon (re)start finding a damaged artifact on disk.
  Engine.cache().dropIndex();
  {
    std::ofstream Junk(SoPath, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(Junk.good());
    Junk << "this is not a shared object";
  }

  ExecResult R = Engine.run(*P);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, VM.Output)
      << "the degraded run must still be byte-identical";
  EXPECT_TRUE(nativeDegradedRemark(Obs))
      << "corruption must degrade loudly, not silently";
  EXPECT_FALSE(std::ifstream(SoPath).good())
      << "the corrupt artifact must be evicted from disk";

  // Recovery: the following run recompiles and goes native again.
  std::int64_t MissesBefore = Obs.Stats.get("native.cache.misses");
  ExecResult R2 = Engine.run(*P);
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.Output, VM.Output);
  EXPECT_EQ(Obs.Stats.get("native.cache.misses"), MissesBefore + 1);
  EXPECT_TRUE(std::ifstream(SoPath).good())
      << "the recompile must repopulate the cache";
}

// A stale ABI stamp is corruption too: an artifact whose
// mcrt_abi_version() disagrees with the host must never be called. We
// simulate it with an .so that lacks the mcrt symbols entirely (any
// system library): rejected, evicted, loud VM fallback.
TEST(NativeCorruptionTest, ForeignSoRejected) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  std::string Dir = freshCacheDir("foreign");

  Observer Obs;
  auto P = compileBench("clos", &Obs);
  ASSERT_NE(P, nullptr);
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK);

  NativeEngine Engine(Dir);
  ASSERT_TRUE(Engine.run(*P).OK);

  // Replace the artifact with a real, loadable .so that is not ours
  // (unload first: cc truncates in place, and truncating a mapped .so
  // is its own crash).
  std::string SoPath =
      Engine.cache().soPathFor(Engine.cacheKeyFor(*P, false, false));
  Engine.cache().dropIndex();
  std::string CPath = Dir + "/empty.c";
  {
    std::ofstream C(CPath);
    C << "int matcoal_unrelated(void) { return 7; }\n";
  }
  SubprocessResult CC = ccCompileShared(CPath, Engine.mcrtDir(), SoPath);
  ASSERT_TRUE(CC.ok()) << CC.Diag;

  ExecResult R = Engine.run(*P);
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.Output, VM.Output);
  EXPECT_TRUE(nativeDegradedRemark(Obs));
}

// dlopen runs initializers before any host-side check, so an artifact
// another principal could have tampered with (here: group/other
// writable) must be refused before dlopen -- treated as corrupt,
// evicted, loud VM fallback.
TEST(NativeCorruptionTest, GroupWritableArtifactRejected) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  std::string Dir = freshCacheDir("perms");

  Observer Obs;
  auto P = compileBench("clos", &Obs);
  ASSERT_NE(P, nullptr);
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK);

  NativeEngine Engine(Dir);
  ASSERT_TRUE(Engine.run(*P).OK);

  std::string SoPath =
      Engine.cache().soPathFor(Engine.cacheKeyFor(*P, false, false));
  Engine.cache().dropIndex();
  ASSERT_EQ(::chmod(SoPath.c_str(), 0766), 0);

  ExecResult R = Engine.run(*P);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, VM.Output);
  EXPECT_TRUE(nativeDegradedRemark(Obs))
      << "an untrustworthy artifact must degrade loudly";
  EXPECT_FALSE(std::ifstream(SoPath).good())
      << "the untrusted artifact must be evicted";
}

// Programs whose data actually goes complex trip mcrt's runtime
// clear-fault; the engine longjmps out, discards the partial output, and
// re-runs on the VM -- still byte-identical, loudly degraded, and the
// daemon-fatal exit(1) in mcrt_fail never fires in-process.
TEST(NativeTrapTest, ComplexProgramDegradesToVM) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  Observer Obs;
  auto P = compileBench("diff", &Obs); // fiff's complex-valued sibling
  ASSERT_NE(P, nullptr);
  ExecResult VM = P->runStatic();
  ASSERT_TRUE(VM.OK);

  NativeEngine Engine(freshCacheDir("trap"));
  ExecResult R = Engine.run(*P);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, VM.Output);
  EXPECT_TRUE(nativeDegradedRemark(Obs))
      << "a runtime trap must surface as a Degraded remark";
}

// An error() raised by generated code is a trap, not a host exit: the
// fail-handler trampoline must carry it back and the VM must classify it.
TEST(NativeTrapTest, ErrorBuiltinDoesNotKillTheHost) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";
  Observer Obs;
  Diagnostics Diags;
  CompileOptions Opts;
  Opts.Obs = &Obs;
  auto P = compileSource("disp(1);\nerror('boom');\ndisp(2);\n", Diags, Opts);
  ASSERT_NE(P, nullptr) << Diags.str();
  ExecResult VM = P->runStatic();

  NativeEngine Engine(freshCacheDir("error"));
  ExecResult R = Engine.run(*P);
  // Both tiers agree the program fails; the native tier survived to say
  // so (the whole point of the longjmp trampoline).
  EXPECT_EQ(R.OK, VM.OK);
  EXPECT_FALSE(R.OK);
  EXPECT_TRUE(nativeDegradedRemark(Obs));
}

// matcoald-style storm: one service, one engine, one cache. A serial
// warm pass compiles each distinct program once (one miss each); the
// concurrent storm that follows must be all hits -- no request recompiles
// what the shared cache already holds -- with every response
// byte-identical to its program's VM output and tagged "native".
TEST(NativeServiceStormTest, ConcurrentRequestsShareOneCache) {
  if (!ccAvailable())
    GTEST_SKIP() << "no system C compiler";

  const char *Sources[] = {
      "x = 0;\nfor i = 1:50\nx = x + i * i;\nend\ndisp(x);\n",
      "a = [1, 2; 3, 4];\nb = a * a';\ndisp(sum(sum(b)));\n",
      "v = zeros(1, 16);\nfor k = 1:16\nv(k) = mod(k * 7, 5);\nend\n"
      "disp(sum(v));\n",
      "n = 1;\nwhile n < 40\nn = n * 3;\nend\ndisp(n);\n",
  };
  constexpr unsigned NumSources = 4;
  constexpr unsigned Waves = 8; // 32 requests over 4 distinct programs.

  std::vector<std::string> VMOut(NumSources);
  for (unsigned I = 0; I < NumSources; ++I) {
    Diagnostics Diags;
    auto P = compileSource(Sources[I], Diags);
    ASSERT_NE(P, nullptr) << Diags.str();
    ExecResult R = P->runStatic();
    ASSERT_TRUE(R.OK) << R.Error;
    VMOut[I] = R.Output;
  }

  ServiceConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCap = NumSources * Waves;
  Cfg.CacheDir = freshCacheDir("storm");
  CompileService Svc(Cfg);

  // Serial warm pass: one compile (miss) per distinct program.
  for (unsigned I = 0; I < NumSources; ++I) {
    ServiceRequest Req;
    Req.Source = Sources[I];
    Req.Native = true;
    ServiceResponse R = Svc.processNow(Req);
    ASSERT_EQ(R.Kind, ResponseKind::OK) << R.Error;
    EXPECT_EQ(R.Output, VMOut[I]);
    for (const auto &[Name, Value] : R.Counters) {
      if (Name == "native.cache.misses") {
        EXPECT_EQ(Value, 1) << "warm pass program " << I;
      }
    }
  }

  std::mutex Mu;
  std::vector<ServiceResponse> Got;
  for (unsigned W = 0; W < Waves; ++W)
    for (unsigned I = 0; I < NumSources; ++I) {
      ServiceRequest Req;
      Req.Id = std::to_string(W) + "." + std::to_string(I);
      Req.Source = Sources[I];
      Req.Native = true;
      ASSERT_TRUE(Svc.submit(Req, [&](ServiceResponse R) {
        std::lock_guard<std::mutex> L(Mu);
        Got.push_back(std::move(R));
      }));
    }
  Svc.drain();

  ASSERT_EQ(Got.size(), NumSources * Waves);
  for (const ServiceResponse &R : Got) {
    ASSERT_EQ(R.Kind, ResponseKind::OK) << R.Error;
    unsigned I = std::stoul(R.Id.substr(R.Id.find('.') + 1));
    EXPECT_EQ(R.Output, VMOut[I]) << "request " << R.Id << " diverged";
    EXPECT_EQ(R.Tier, "native") << "request " << R.Id;
    long long Hits = 0, Misses = 0;
    for (const auto &[Name, Value] : R.Counters) {
      if (Name == "native.cache.hits")
        Hits = Value;
      if (Name == "native.cache.misses")
        Misses = Value;
    }
    EXPECT_EQ(Hits, 1) << "request " << R.Id << " should hit the cache";
    EXPECT_EQ(Misses, 0) << "request " << R.Id << " recompiled needlessly";
  }
  Svc.shutdown();
}

// Ineligibility is loud, cheap, and correct even with no cc on PATH: a
// program degraded below the planned static model never reaches the
// compiler or the cache.
TEST(NativeEligibilityTest, DegradedCompileFallsBackWithoutTouchingCache) {
  Observer Obs;
  Diagnostics Diags;
  CompileOptions Opts;
  Opts.Obs = &Obs;
  Opts.InjectFault = parseCompileStage("typeinf"); // -> MccOnly rung.
  auto P = compileSource("disp(42);\n", Diags, Opts);
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_LT(static_cast<int>(DegradeLevel::IdentityPlans),
            static_cast<int>(P->level()))
      << "fault injection should have degraded below IdentityPlans";

  std::string WhyNot;
  EXPECT_FALSE(NativeEngine::eligible(*P, &WhyNot));
  EXPECT_FALSE(WhyNot.empty());

  NativeEngine Engine(freshCacheDir("inelig"));
  ExecResult R = Engine.run(*P);
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_EQ(R.Output, "42\n");
  EXPECT_TRUE(nativeDegradedRemark(Obs));
  EXPECT_EQ(Obs.Stats.get("native.cache.hits"), 0);
  EXPECT_EQ(Obs.Stats.get("native.cache.misses"), 0);
}

} // namespace
