//===- OpsTest.cpp - Operator kernel unit tests ---------------------------===//

#include "runtime/Kernels.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

Array mat(std::int64_t R, std::int64_t C, std::vector<double> Vals) {
  Array A;
  A.Dims = {R, C};
  A.Re = std::move(Vals);
  return A;
}

TEST(Ops, AddScalars) {
  Array R = binaryOp(Opcode::Add, Array::scalar(2), Array::scalar(3));
  EXPECT_DOUBLE_EQ(R.scalarValue(), 5.0);
  EXPECT_TRUE(R.isScalar());
}

TEST(Ops, AddBroadcastScalar) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array R = binaryOp(Opcode::Add, A, Array::scalar(10));
  EXPECT_DOUBLE_EQ(R.reAt(0), 11);
  EXPECT_DOUBLE_EQ(R.reAt(3), 14);
  Array R2 = binaryOp(Opcode::Add, Array::scalar(10), A);
  EXPECT_DOUBLE_EQ(R2.reAt(2), 13);
}

TEST(Ops, AddShapeMismatchThrows) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array B = mat(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_THROW(binaryOp(Opcode::Add, A, B), MatError);
}

TEST(Ops, ComplexArithmetic) {
  Array A = Array::complexScalar(1, 2);
  Array B = Array::complexScalar(3, -1);
  Array Sum = binaryOp(Opcode::Add, A, B);
  EXPECT_DOUBLE_EQ(Sum.reAt(0), 4);
  EXPECT_DOUBLE_EQ(Sum.imAt(0), 1);
  Array Prod = binaryOp(Opcode::ElemMul, A, B);
  EXPECT_DOUBLE_EQ(Prod.reAt(0), 5);
  EXPECT_DOUBLE_EQ(Prod.imAt(0), 5);
}

TEST(Ops, ComplexResultNormalizesToReal) {
  Array A = Array::complexScalar(1, 2);
  Array B = Array::complexScalar(1, -2);
  Array Sum = binaryOp(Opcode::Add, A, B);
  EXPECT_FALSE(Sum.isComplex());
}

TEST(Ops, MatMul) {
  Array A = mat(2, 3, {1, 4, 2, 5, 3, 6}); // [1 2 3; 4 5 6].
  Array B = mat(3, 2, {7, 9, 11, 8, 10, 12});
  Array C = binaryOp(Opcode::MatMul, A, B);
  ASSERT_EQ(C.dims(), (std::vector<std::int64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(C.reAt(0), 58);
  EXPECT_DOUBLE_EQ(C.reAt(1), 139);
  EXPECT_DOUBLE_EQ(C.reAt(2), 64);
  EXPECT_DOUBLE_EQ(C.reAt(3), 154);
}

TEST(Ops, MatMulDimMismatchThrows) {
  Array A = mat(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_THROW(binaryOp(Opcode::MatMul, A, A), MatError);
}

TEST(Ops, MatMulScalarIsElementwise) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array R = binaryOp(Opcode::MatMul, Array::scalar(2), A);
  EXPECT_DOUBLE_EQ(R.reAt(3), 8);
}

TEST(Ops, SolveLeftDivide) {
  // [2 0; 0 4] \ [2; 8] = [1; 2].
  Array A = mat(2, 2, {2, 0, 0, 4});
  Array B = mat(2, 1, {2, 8});
  Array X = binaryOp(Opcode::MatLDiv, A, B);
  EXPECT_NEAR(X.reAt(0), 1.0, 1e-12);
  EXPECT_NEAR(X.reAt(1), 2.0, 1e-12);
}

TEST(Ops, SolveWithPivoting) {
  // Requires a row swap: [0 1; 1 0] \ [3; 5] = [5; 3].
  Array A = mat(2, 2, {0, 1, 1, 0});
  Array B = mat(2, 1, {3, 5});
  Array X = binaryOp(Opcode::MatLDiv, A, B);
  EXPECT_NEAR(X.reAt(0), 5.0, 1e-12);
  EXPECT_NEAR(X.reAt(1), 3.0, 1e-12);
}

TEST(Ops, SingularSolveThrows) {
  Array A = mat(2, 2, {1, 1, 1, 1});
  Array B = mat(2, 1, {1, 2});
  EXPECT_THROW(binaryOp(Opcode::MatLDiv, A, B), MatError);
}

TEST(Ops, RightDivide) {
  // [8 2] / [2 0; 0 2]  =  [4 1].
  Array A = mat(1, 2, {8, 2});
  Array B = mat(2, 2, {2, 0, 0, 2});
  Array X = binaryOp(Opcode::MatRDiv, A, B);
  EXPECT_NEAR(X.reAt(0), 4.0, 1e-12);
  EXPECT_NEAR(X.reAt(1), 1.0, 1e-12);
}

TEST(Ops, ElemPowEscapesToComplex) {
  Array R = binaryOp(Opcode::ElemPow, Array::scalar(-4), Array::scalar(0.5));
  EXPECT_TRUE(R.isComplex());
  EXPECT_NEAR(R.imAt(0), 2.0, 1e-12);
  EXPECT_NEAR(R.reAt(0), 0.0, 1e-12);
}

TEST(Ops, ElemPowIntegerExponentStaysReal) {
  Array R = binaryOp(Opcode::ElemPow, Array::scalar(-2), Array::scalar(3));
  EXPECT_FALSE(R.isComplex());
  EXPECT_DOUBLE_EQ(R.reAt(0), -8.0);
}

TEST(Ops, MatPowSquaresMatrix) {
  Array A = mat(2, 2, {1, 0, 1, 1}); // [1 1; 0 1].
  Array R = binaryOp(Opcode::MatPow, A, Array::scalar(3));
  EXPECT_DOUBLE_EQ(R.reAt(2), 3.0); // Upper-right accumulates.
}

TEST(Ops, ComparisonsAreLogical) {
  Array A = mat(1, 3, {1, 5, 3});
  Array R = binaryOp(Opcode::Gt, A, Array::scalar(2));
  EXPECT_TRUE(R.isLogical());
  EXPECT_DOUBLE_EQ(R.reAt(0), 0);
  EXPECT_DOUBLE_EQ(R.reAt(1), 1);
  EXPECT_DOUBLE_EQ(R.reAt(2), 1);
}

TEST(Ops, TransposeMatrix) {
  Array A = mat(2, 3, {1, 4, 2, 5, 3, 6});
  Array T = unaryOp(Opcode::Transpose, A);
  ASSERT_EQ(T.dims(), (std::vector<std::int64_t>{3, 2}));
  EXPECT_DOUBLE_EQ(T.reAt(0), 1);
  EXPECT_DOUBLE_EQ(T.reAt(1), 2);
  EXPECT_DOUBLE_EQ(T.reAt(3), 4);
}

TEST(Ops, CTransposeConjugates) {
  Array A = Array::complexScalar(1, 2);
  Array T = unaryOp(Opcode::CTranspose, A);
  EXPECT_DOUBLE_EQ(T.imAt(0), -2);
  Array T2 = unaryOp(Opcode::Transpose, A);
  EXPECT_DOUBLE_EQ(T2.imAt(0), 2);
}

TEST(Ops, NotIsLogical) {
  Array R = unaryOp(Opcode::Not, mat(1, 2, {0, 7}));
  EXPECT_TRUE(R.isLogical());
  EXPECT_DOUBLE_EQ(R.reAt(0), 1);
  EXPECT_DOUBLE_EQ(R.reAt(1), 0);
}

TEST(Ops, ColonRangeBasics) {
  Array R = colonRange(Array::scalar(3), Array::scalar(7));
  ASSERT_EQ(R.numel(), 5);
  EXPECT_DOUBLE_EQ(R.reAt(4), 7);
  EXPECT_TRUE(R.isRowVector());
}

TEST(Ops, ColonRangeEmpty) {
  Array R = colonRange(Array::scalar(5), Array::scalar(1));
  EXPECT_TRUE(R.isEmpty());
}

TEST(Ops, ColonRangeNegativeStep) {
  Array R = colonRange3(Array::scalar(10), Array::scalar(-2),
                        Array::scalar(4));
  ASSERT_EQ(R.numel(), 4);
  EXPECT_DOUBLE_EQ(R.reAt(3), 4);
}

TEST(Ops, ColonRangeFractionalStepIsRobust) {
  Array R = colonRange3(Array::scalar(0), Array::scalar(0.1),
                        Array::scalar(1.0));
  EXPECT_EQ(R.numel(), 11);
}

TEST(Ops, SubsrefScalar) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I1 = Array::scalar(2);
  Array R = subsref(A, {&I1});
  EXPECT_DOUBLE_EQ(R.scalarValue(), 2); // Column-major: a(2) = 2.
}

TEST(Ops, SubsrefTwoDim) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I1 = Array::scalar(1), I2 = Array::scalar(2);
  Array R = subsref(A, {&I1, &I2});
  EXPECT_DOUBLE_EQ(R.scalarValue(), 3); // a(1, 2).
}

TEST(Ops, SubsrefColonColumn) {
  Array A = mat(2, 3, {1, 2, 3, 4, 5, 6});
  Array C = Array::colonMarker(), J = Array::scalar(2);
  Array R = subsref(A, {&C, &J});
  ASSERT_EQ(R.dims(), (std::vector<std::int64_t>{2, 1}));
  EXPECT_DOUBLE_EQ(R.reAt(0), 3);
  EXPECT_DOUBLE_EQ(R.reAt(1), 4);
}

TEST(Ops, SubsrefLinearColonIsColumn) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array C = Array::colonMarker();
  Array R = subsref(A, {&C});
  EXPECT_EQ(R.dims(), (std::vector<std::int64_t>{4, 1}));
}

TEST(Ops, SubsrefReversePermutation) {
  Array A = mat(1, 4, {1, 2, 3, 4});
  Array I = mat(1, 4, {4, 3, 2, 1});
  Array R = subsref(A, {&I});
  EXPECT_DOUBLE_EQ(R.reAt(0), 4);
  EXPECT_DOUBLE_EQ(R.reAt(3), 1);
}

TEST(Ops, SubsrefOutOfBoundsThrows) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I = Array::scalar(5);
  EXPECT_THROW(subsref(A, {&I}), MatError);
}

TEST(Ops, SubsrefLogicalMask) {
  Array A = mat(1, 4, {10, 20, 30, 40});
  Array Mask = binaryOp(Opcode::Gt, A, Array::scalar(15));
  Array R = subsref(A, {&Mask});
  ASSERT_EQ(R.numel(), 3);
  EXPECT_DOUBLE_EQ(R.reAt(0), 20);
}

TEST(Ops, SubsasgnScalarWrite) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I1 = Array::scalar(2), I2 = Array::scalar(1);
  subsasgnInPlace(A, Array::scalar(9), {&I1, &I2});
  EXPECT_DOUBLE_EQ(A.reAt(1), 9);
}

TEST(Ops, SubsasgnGrowth) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I1 = Array::scalar(3), I2 = Array::scalar(3);
  subsasgnInPlace(A, Array::scalar(9), {&I1, &I2});
  ASSERT_EQ(A.dims(), (std::vector<std::int64_t>{3, 3}));
  // Old elements preserved at their (i, j) positions.
  EXPECT_DOUBLE_EQ(A.reAt(0), 1);     // a(1, 1).
  EXPECT_DOUBLE_EQ(A.reAt(1), 2);     // a(2, 1).
  EXPECT_DOUBLE_EQ(A.reAt(3), 3);     // a(1, 2).
  EXPECT_DOUBLE_EQ(A.reAt(4), 4);     // a(2, 2).
  EXPECT_DOUBLE_EQ(A.reAt(8), 9);     // a(3, 3).
  EXPECT_DOUBLE_EQ(A.reAt(2), 0);     // Zero-filled.
}

TEST(Ops, SubsasgnVectorGrowthFromEmpty) {
  Array A;
  Array I = Array::scalar(3);
  subsasgnInPlace(A, Array::scalar(7), {&I});
  ASSERT_EQ(A.dims(), (std::vector<std::int64_t>{1, 3}));
  EXPECT_DOUBLE_EQ(A.reAt(2), 7);
  EXPECT_DOUBLE_EQ(A.reAt(0), 0);
}

TEST(Ops, SubsasgnColumnVectorGrowsDownward) {
  Array A = mat(2, 1, {1, 2});
  Array I = Array::scalar(4);
  subsasgnInPlace(A, Array::scalar(9), {&I});
  ASSERT_EQ(A.dims(), (std::vector<std::int64_t>{4, 1}));
  EXPECT_DOUBLE_EQ(A.reAt(3), 9);
}

TEST(Ops, SubsasgnMatrixLinearGrowthThrows) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array I = Array::scalar(9);
  EXPECT_THROW(subsasgnInPlace(A, Array::scalar(1), {&I}), MatError);
}

TEST(Ops, SubsasgnRangeWrite) {
  Array A = mat(1, 5, {1, 2, 3, 4, 5});
  Array I = mat(1, 2, {2, 4});
  Array R = mat(1, 2, {20, 40});
  subsasgnInPlace(A, R, {&I});
  EXPECT_DOUBLE_EQ(A.reAt(1), 20);
  EXPECT_DOUBLE_EQ(A.reAt(3), 40);
}

TEST(Ops, SubsasgnDimensionMismatchThrows) {
  Array A = mat(1, 5, {1, 2, 3, 4, 5});
  Array I = mat(1, 2, {2, 4});
  Array R = mat(1, 3, {1, 2, 3});
  EXPECT_THROW(subsasgnInPlace(A, R, {&I}), MatError);
}

TEST(Ops, SubsasgnColonColumnWrite) {
  Array A = mat(2, 2, {1, 2, 3, 4});
  Array C = Array::colonMarker(), J = Array::scalar(2);
  Array R = mat(2, 1, {7, 8});
  subsasgnInPlace(A, R, {&C, &J});
  EXPECT_DOUBLE_EQ(A.reAt(2), 7);
  EXPECT_DOUBLE_EQ(A.reAt(3), 8);
}

TEST(Ops, SubsasgnComplexRhsPromotes) {
  Array A = mat(1, 2, {1, 2});
  Array I = Array::scalar(1);
  subsasgnInPlace(A, Array::complexScalar(0, 1), {&I});
  EXPECT_TRUE(A.isComplex());
  EXPECT_DOUBLE_EQ(A.imAt(0), 1);
  EXPECT_DOUBLE_EQ(A.imAt(1), 0);
}

TEST(Ops, HorzcatAndVertcat) {
  Array A = mat(2, 1, {1, 2});
  Array B = mat(2, 1, {3, 4});
  Array H = horzcat({&A, &B});
  ASSERT_EQ(H.dims(), (std::vector<std::int64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(H.reAt(2), 3);
  Array V = vertcat({&A, &B});
  ASSERT_EQ(V.dims(), (std::vector<std::int64_t>{4, 1}));
  EXPECT_DOUBLE_EQ(V.reAt(2), 3);
}

TEST(Ops, ConcatIgnoresEmpties) {
  Array A = mat(1, 2, {1, 2});
  Array E;
  Array H = horzcat({&E, &A});
  EXPECT_EQ(H.numel(), 2);
}

TEST(Ops, ConcatMismatchThrows) {
  Array A = mat(2, 1, {1, 2});
  Array B = mat(3, 1, {1, 2, 3});
  EXPECT_THROW(horzcat({&A, &B}), MatError);
}

TEST(Ops, CharConcatStaysChar) {
  Array A = Array::charRow("ab");
  Array B = Array::charRow("cd");
  Array H = horzcat({&A, &B});
  EXPECT_TRUE(H.isChar());
  EXPECT_EQ(H.toStdString(), "abcd");
}

TEST(Ops, InPlaceBinaryAliasedAdd) {
  // Dst aliasing an operand must be handled (GCTD's in-place case).
  Array A = mat(1, 4, {1, 2, 3, 4});
  binaryOpInto(A, Opcode::Add, A, Array::scalar(10));
  EXPECT_DOUBLE_EQ(A.reAt(0), 11);
  EXPECT_DOUBLE_EQ(A.reAt(3), 14);
}

TEST(Ops, InPlaceBinaryScalarHoisted) {
  // c = s + c with c aliased: the scalar must be read before overwrite.
  Array C = mat(1, 3, {1, 2, 3});
  binaryOpInto(C, Opcode::Add, C, C); // c = c + c elementwise.
  EXPECT_DOUBLE_EQ(C.reAt(0), 2);
  EXPECT_DOUBLE_EQ(C.reAt(2), 6);
}

// Property-style sweep: subsasgn growth preserves all old elements for a
// range of expansion shapes (the backward-formation invariant).
class GrowthSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GrowthSweep, BackwardMovePreservesElements) {
  auto [GrowR, GrowC] = GetParam();
  Array A = mat(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Array I1 = Array::scalar(3 + GrowR), I2 = Array::scalar(3 + GrowC);
  subsasgnInPlace(A, Array::scalar(-1), {&I1, &I2});
  EXPECT_EQ(A.dim(0), 3 + GrowR);
  EXPECT_EQ(A.dim(1), 3 + GrowC);
  for (int J = 0; J < 3; ++J)
    for (int I = 0; I < 3; ++I)
      EXPECT_DOUBLE_EQ(A.reAt(I + J * (3 + GrowR)), 1 + I + 3 * J)
          << "element (" << I << "," << J << ") lost";
  EXPECT_DOUBLE_EQ(A.reAt((2 + GrowR) + (2 + GrowC) * (3 + GrowR)), -1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GrowthSweep,
                         ::testing::Values(std::make_pair(0, 1),
                                           std::make_pair(1, 0),
                                           std::make_pair(1, 1),
                                           std::make_pair(5, 0),
                                           std::make_pair(0, 5),
                                           std::make_pair(3, 7)));

} // namespace
