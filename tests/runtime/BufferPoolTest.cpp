//===- BufferPoolTest.cpp - Size-class boundary tests for the pool --------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// Pins the free list's boundary behavior: exact power-of-two class edges,
// the MinElems / MaxElems retention window, the per-class retention cap,
// reuse-after-free ordering (pointer identity), the two-class scan window
// in acquire, and the held-bytes high-water accounting behind the
// rt.pool.held_bytes_hwm counter.
//
//===----------------------------------------------------------------------===//

#include "runtime/BufferPool.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

/// A vector with exactly \p Cap capacity and \p Cap elements (libstdc++
/// reserve on a fresh vector allocates the requested amount exactly; the
/// assertions below re-check rather than assume).
std::vector<double> buf(std::size_t Cap) {
  std::vector<double> V;
  V.reserve(Cap);
  V.resize(Cap);
  return V;
}

constexpr std::int64_t B = sizeof(double);

TEST(BufferPool, ExactClassEdgeReusesAndOneOverFallsThrough) {
  // Class k holds capacities [2^k, 2^(k+1)); a capacity-64 buffer sits at
  // the bottom edge of its class and must satisfy a request of exactly 64
  // but not 65 (capacity check inside the class).
  BufferPool P;
  std::vector<double> V = buf(64);
  ASSERT_EQ(V.capacity(), 64u);
  P.release(std::move(V));
  EXPECT_EQ(P.heldBytes(), 64 * B);

  std::vector<double> Miss = P.acquire(65);
  EXPECT_EQ(P.reuses(), 0u);
  EXPECT_EQ(Miss.size(), 65u);
  EXPECT_EQ(P.heldBytes(), 64 * B); // still pooled

  std::vector<double> Hit = P.acquire(64);
  EXPECT_EQ(P.reuses(), 1u);
  EXPECT_EQ(Hit.size(), 64u);
  EXPECT_EQ(P.heldBytes(), 0);
}

TEST(BufferPool, RetentionWindowMinAndMaxElems) {
  BufferPool P;
  // Below MinElems: freed, never pooled.
  std::vector<double> Tiny = buf(BufferPool::MinElems - 1);
  P.release(std::move(Tiny));
  EXPECT_EQ(P.heldBytes(), 0);
  // Exactly MinElems: pooled.
  P.release(buf(BufferPool::MinElems));
  EXPECT_EQ(P.heldBytes(),
            static_cast<std::int64_t>(BufferPool::MinElems) * B);
  P.drain();
  // Exactly MaxElems: pooled; one past: freed immediately (oversize
  // fallthrough keeps the time-weighted heap average honest).
  P.release(buf(BufferPool::MaxElems));
  EXPECT_EQ(P.heldBytes(),
            static_cast<std::int64_t>(BufferPool::MaxElems) * B);
  P.release(buf(BufferPool::MaxElems + 1));
  EXPECT_EQ(P.heldBytes(),
            static_cast<std::int64_t>(BufferPool::MaxElems) * B);
}

TEST(BufferPool, MaxPerClassEvictsTheThirdBuffer) {
  BufferPool P;
  P.release(buf(64));
  P.release(buf(64));
  EXPECT_EQ(P.heldBytes(), 2 * 64 * B);
  P.release(buf(64)); // class full: freed, not held
  EXPECT_EQ(P.heldBytes(), 2 * 64 * B);
}

TEST(BufferPool, ReuseAfterFreeReturnsTheFirstReleasedBuffer) {
  BufferPool P;
  std::vector<double> A = buf(64), Bv = buf(64);
  const double *APtr = A.data(), *BPtr = Bv.data();
  P.release(std::move(A));
  P.release(std::move(Bv));
  // acquire scans slots in insertion order: first released, first reused.
  std::vector<double> R1 = P.acquire(40);
  EXPECT_EQ(R1.data(), APtr);
  std::vector<double> R2 = P.acquire(40);
  EXPECT_EQ(R2.data(), BPtr);
  EXPECT_EQ(P.reuses(), 2u);
  EXPECT_EQ(P.heldBytes(), 0);
}

TEST(BufferPool, AcquireScansOnlyTwoClassesUp) {
  // A held 1024-capacity buffer must not be pinned by a 33-element
  // request four classes below it: acquire checks classOf(N) and the one
  // class above, nothing further.
  BufferPool P;
  P.release(buf(1024));
  std::vector<double> V = P.acquire(33);
  EXPECT_EQ(P.reuses(), 0u);
  EXPECT_EQ(V.size(), 33u);
  EXPECT_EQ(P.heldBytes(), 1024 * B);
  // The class directly above is eligible: a 128-capacity buffer serves a
  // 65-element request (classOf(65) = classOf(128) - 1).
  P.release(buf(128));
  std::vector<double> W = P.acquire(65);
  EXPECT_EQ(P.reuses(), 1u);
  EXPECT_EQ(W.capacity(), 128u);
}

TEST(BufferPool, HeldBytesHwmSurvivesDrainAndTracksThePeak) {
  BufferPool P;
  EXPECT_EQ(P.heldBytesHwm(), 0);
  P.release(buf(64));
  P.release(buf(256));
  std::int64_t Peak = (64 + 256) * B;
  EXPECT_EQ(P.heldBytes(), Peak);
  EXPECT_EQ(P.heldBytesHwm(), Peak);
  (void)P.acquire(256); // leaves only the 64-buffer held
  EXPECT_LT(P.heldBytes(), Peak);
  EXPECT_EQ(P.heldBytesHwm(), Peak);
  P.drain();
  EXPECT_EQ(P.heldBytes(), 0);
  EXPECT_EQ(P.heldBytesHwm(), Peak); // the counter is a true high-water
}

TEST(BufferPool, OnReuseFiresOncePerPoolServedAllocation) {
  BufferPool P;
  unsigned Fired = 0;
  P.OnReuse = [&] { ++Fired; };
  P.release(buf(64));
  (void)P.acquire(64); // hit
  (void)P.acquire(64); // pool empty: malloc, no callback
  EXPECT_EQ(Fired, 1u);
  EXPECT_EQ(P.reuses(), 1u);
}

TEST(BufferPool, MeterChargeMirrorsHeldBytes) {
  BufferPool P;
  std::int64_t Metered = 0;
  P.Charge = [&](std::int64_t D) { Metered += D; };
  P.release(buf(64));
  P.release(buf(128));
  EXPECT_EQ(Metered, P.heldBytes());
  (void)P.acquire(64);
  EXPECT_EQ(Metered, P.heldBytes());
  P.drain();
  EXPECT_EQ(Metered, 0);
}

} // namespace
