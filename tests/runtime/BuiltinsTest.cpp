//===- BuiltinsTest.cpp - Builtin library unit tests ----------------------===//

#include "runtime/Kernels.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

struct BuiltinFixture : ::testing::Test {
  RandState Rng{42};
  OutputSink Out;

  Array call1(const std::string &Name, std::vector<Array> Args) {
    std::vector<const Array *> Ptrs;
    for (const Array &A : Args)
      Ptrs.push_back(&A);
    auto R = callBuiltin(Name, Ptrs, 1, Rng, Out);
    EXPECT_FALSE(R.empty()) << Name;
    return R.empty() ? Array() : R[0];
  }
};

TEST_F(BuiltinFixture, ZerosOnesEye) {
  Array Z = call1("zeros", {Array::scalar(2), Array::scalar(3)});
  EXPECT_EQ(Z.dims(), (std::vector<std::int64_t>{2, 3}));
  EXPECT_DOUBLE_EQ(Z.reAt(5), 0);
  Array O = call1("ones", {Array::scalar(2)});
  EXPECT_EQ(O.numel(), 4);
  EXPECT_DOUBLE_EQ(O.reAt(3), 1);
  Array I = call1("eye", {Array::scalar(3)});
  EXPECT_DOUBLE_EQ(I.reAt(0), 1);
  EXPECT_DOUBLE_EQ(I.reAt(1), 0);
  EXPECT_DOUBLE_EQ(I.reAt(4), 1);
}

TEST_F(BuiltinFixture, ZerosThreeD) {
  Array Z = call1("zeros",
                  {Array::scalar(2), Array::scalar(3), Array::scalar(4)});
  EXPECT_EQ(Z.dims(), (std::vector<std::int64_t>{2, 3, 4}));
  EXPECT_EQ(Z.numel(), 24);
}

TEST_F(BuiltinFixture, RandIsDeterministicPerSeed) {
  RandState R1(7), R2(7);
  OutputSink S;
  auto A = callBuiltin("rand", {}, 1, R1, S);
  auto B = callBuiltin("rand", {}, 1, R2, S);
  EXPECT_DOUBLE_EQ(A[0].scalarValue(), B[0].scalarValue());
  EXPECT_GE(A[0].scalarValue(), 0.0);
  EXPECT_LT(A[0].scalarValue(), 1.0);
}

TEST_F(BuiltinFixture, SizeVariants) {
  Array A = Array::zeros({3, 5});
  Array S = call1("size", {A});
  EXPECT_EQ(S.numel(), 2);
  EXPECT_DOUBLE_EQ(S.reAt(0), 3);
  EXPECT_DOUBLE_EQ(S.reAt(1), 5);
  Array D2 = call1("size", {A, Array::scalar(2)});
  EXPECT_DOUBLE_EQ(D2.scalarValue(), 5);
  // Two-output form.
  std::vector<const Array *> Args = {&A};
  auto Two = callBuiltin("size", Args, 2, Rng, Out);
  ASSERT_EQ(Two.size(), 2u);
  EXPECT_DOUBLE_EQ(Two[0].scalarValue(), 3);
  EXPECT_DOUBLE_EQ(Two[1].scalarValue(), 5);
}

TEST_F(BuiltinFixture, NumelLengthIsempty) {
  Array A = Array::zeros({3, 5});
  EXPECT_DOUBLE_EQ(call1("numel", {A}).scalarValue(), 15);
  EXPECT_DOUBLE_EQ(call1("length", {A}).scalarValue(), 5);
  EXPECT_DOUBLE_EQ(call1("isempty", {A}).scalarValue(), 0);
  EXPECT_DOUBLE_EQ(call1("isempty", {Array()}).scalarValue(), 1);
  EXPECT_DOUBLE_EQ(call1("length", {Array()}).scalarValue(), 0);
}

TEST_F(BuiltinFixture, AbsOfComplex) {
  Array R = call1("abs", {Array::complexScalar(3, 4)});
  EXPECT_DOUBLE_EQ(R.scalarValue(), 5);
  EXPECT_FALSE(R.isComplex());
}

TEST_F(BuiltinFixture, SqrtEscapesToComplex) {
  Array R = call1("sqrt", {Array::scalar(-4)});
  EXPECT_TRUE(R.isComplex());
  EXPECT_NEAR(R.imAt(0), 2.0, 1e-12);
}

TEST_F(BuiltinFixture, ExpOfImaginary) {
  // exp(i*pi) = -1.
  Array R = call1("exp", {Array::complexScalar(0, M_PI)});
  EXPECT_NEAR(R.reAt(0), -1.0, 1e-12);
}

TEST_F(BuiltinFixture, RoundingFamily) {
  EXPECT_DOUBLE_EQ(call1("floor", {Array::scalar(2.7)}).scalarValue(), 2);
  EXPECT_DOUBLE_EQ(call1("ceil", {Array::scalar(2.2)}).scalarValue(), 3);
  EXPECT_DOUBLE_EQ(call1("round", {Array::scalar(2.5)}).scalarValue(), 3);
  EXPECT_DOUBLE_EQ(call1("fix", {Array::scalar(-2.7)}).scalarValue(), -2);
  EXPECT_DOUBLE_EQ(call1("sign", {Array::scalar(-3)}).scalarValue(), -1);
}

TEST_F(BuiltinFixture, ModRem) {
  EXPECT_DOUBLE_EQ(
      call1("mod", {Array::scalar(-1), Array::scalar(3)}).scalarValue(), 2);
  EXPECT_DOUBLE_EQ(
      call1("rem", {Array::scalar(-1), Array::scalar(3)}).scalarValue(),
      -1);
  EXPECT_DOUBLE_EQ(
      call1("mod", {Array::scalar(5), Array::scalar(0)}).scalarValue(), 5);
}

TEST_F(BuiltinFixture, MinMaxVector) {
  Array V;
  V.Dims = {1, 4};
  V.Re = {3, 1, 4, 1};
  EXPECT_DOUBLE_EQ(call1("min", {V}).scalarValue(), 1);
  EXPECT_DOUBLE_EQ(call1("max", {V}).scalarValue(), 4);
  // Two-output max gives the index of the first maximum.
  std::vector<const Array *> Args = {&V};
  auto R = callBuiltin("max", Args, 2, Rng, Out);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[1].scalarValue(), 3);
}

TEST_F(BuiltinFixture, MinMaxElementwise) {
  Array V;
  V.Dims = {1, 3};
  V.Re = {3, 1, 4};
  Array R = call1("max", {V, Array::scalar(2)});
  EXPECT_DOUBLE_EQ(R.reAt(0), 3);
  EXPECT_DOUBLE_EQ(R.reAt(1), 2);
}

TEST_F(BuiltinFixture, SumProdMatrixColumns) {
  Array A = Array::zeros({2, 2});
  A.Re = {1, 2, 3, 4};
  Array S = call1("sum", {A});
  ASSERT_EQ(S.dims(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(S.reAt(0), 3);
  EXPECT_DOUBLE_EQ(S.reAt(1), 7);
  Array V;
  V.Dims = {1, 3};
  V.Re = {2, 3, 4};
  EXPECT_DOUBLE_EQ(call1("prod", {V}).scalarValue(), 24);
}

TEST_F(BuiltinFixture, NormOfVector) {
  Array V;
  V.Dims = {1, 2};
  V.Re = {3, 4};
  EXPECT_DOUBLE_EQ(call1("norm", {V}).scalarValue(), 5);
}

TEST_F(BuiltinFixture, LinspaceEndpoints) {
  Array R = call1("linspace",
                  {Array::scalar(0), Array::scalar(1), Array::scalar(5)});
  ASSERT_EQ(R.numel(), 5);
  EXPECT_DOUBLE_EQ(R.reAt(0), 0);
  EXPECT_DOUBLE_EQ(R.reAt(4), 1);
  EXPECT_DOUBLE_EQ(R.reAt(2), 0.5);
}

TEST_F(BuiltinFixture, RepmatTiles) {
  Array A = Array::zeros({1, 2});
  A.Re = {1, 2};
  Array R = call1("repmat", {A, Array::scalar(2), Array::scalar(2)});
  EXPECT_EQ(R.dims(), (std::vector<std::int64_t>{2, 4}));
  // [1 2 1 2; 1 2 1 2] column-major: cols are [1;1],[2;2],[1;1],[2;2].
  EXPECT_DOUBLE_EQ(R.reAt(0), 1);
  EXPECT_DOUBLE_EQ(R.reAt(2), 2);
  EXPECT_DOUBLE_EQ(R.reAt(4), 1);
}

TEST_F(BuiltinFixture, DispWritesOutput) {
  std::vector<const Array *> Args;
  Array V = Array::scalar(42);
  Args.push_back(&V);
  callBuiltin("disp", Args, 0, Rng, Out);
  EXPECT_EQ(Out.str(), "42\n");
}

TEST_F(BuiltinFixture, FprintfFormats) {
  Array Fmt = Array::charRow("x=%d y=%.2f\n");
  Array X = Array::scalar(7), Y = Array::scalar(3.14159);
  callBuiltin("fprintf", {&Fmt, &X, &Y}, 0, Rng, Out);
  EXPECT_EQ(Out.str(), "x=7 y=3.14\n");
}

TEST_F(BuiltinFixture, FprintfRecyclesFormat) {
  Array Fmt = Array::charRow("%d ");
  Array V;
  V.Dims = {1, 3};
  V.Re = {1, 2, 3};
  callBuiltin("fprintf", {&Fmt, &V}, 0, Rng, Out);
  EXPECT_EQ(Out.str(), "1 2 3 ");
}

TEST_F(BuiltinFixture, FprintfStringArg) {
  Array Fmt = Array::charRow("hello %s!");
  Array S = Array::charRow("world");
  callBuiltin("fprintf", {&Fmt, &S}, 0, Rng, Out);
  EXPECT_EQ(Out.str(), "hello world!");
}

TEST_F(BuiltinFixture, SprintfReturnsChar) {
  Array R = call1("sprintf", {Array::charRow("v=%g"), Array::scalar(2.5)});
  EXPECT_TRUE(R.isChar());
  EXPECT_EQ(R.toStdString(), "v=2.5");
}

TEST_F(BuiltinFixture, ErrorThrows) {
  Array Msg = Array::charRow("boom %d");
  Array V = Array::scalar(3);
  std::vector<const Array *> Args = {&Msg, &V};
  try {
    callBuiltin("error", Args, 0, Rng, Out);
    FAIL() << "expected MatError";
  } catch (const MatError &E) {
    EXPECT_STREQ(E.what(), "boom 3");
  }
}

TEST_F(BuiltinFixture, UnknownBuiltinThrows) {
  EXPECT_THROW(callBuiltin("no_such_function", {}, 1, Rng, Out), MatError);
}

TEST_F(BuiltinFixture, ForcondBothDirections) {
  EXPECT_DOUBLE_EQ(call1("__forcond", {Array::scalar(3), Array::scalar(1),
                                       Array::scalar(5)})
                       .scalarValue(),
                   1);
  // Negative step with i < hi: the loop body is not entered.
  EXPECT_DOUBLE_EQ(call1("__forcond", {Array::scalar(3), Array::scalar(-1),
                                       Array::scalar(5)})
                       .scalarValue(),
                   0);
  EXPECT_DOUBLE_EQ(call1("__forcond", {Array::scalar(5), Array::scalar(-1),
                                       Array::scalar(3)})
                       .scalarValue(),
                   1);
  EXPECT_DOUBLE_EQ(call1("__forcond", {Array::scalar(6), Array::scalar(1),
                                       Array::scalar(5)})
                       .scalarValue(),
                   0);
}

TEST_F(BuiltinFixture, FormattingStableForDisplay) {
  EXPECT_EQ(Array::scalar(3).format(), "3");
  EXPECT_EQ(Array::scalar(3.5).format(), "3.5");
  EXPECT_EQ(Array::complexScalar(1, -2).format(), "1 - 2i");
  Array M = Array::zeros({2, 2});
  M.Re = {1, 2, 3, 4};
  EXPECT_EQ(M.format(), "  1  3\n  2  4");
  EXPECT_EQ(Array().format(), "[]");
  EXPECT_EQ(Array::scalar(5).formatNamed("x"), "x =\n5\n");
}

} // namespace
