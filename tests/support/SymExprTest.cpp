//===- SymExprTest.cpp - Unit tests for symbolic expressions --------------===//

#include "support/SymExpr.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

class SymExprTest : public ::testing::Test {
protected:
  SymExprContext Ctx;
};

TEST_F(SymExprTest, ConstInterning) {
  EXPECT_EQ(Ctx.makeConst(4), Ctx.makeConst(4));
  EXPECT_NE(Ctx.makeConst(4), Ctx.makeConst(5));
  EXPECT_TRUE(Ctx.makeConst(7)->isConst());
  EXPECT_EQ(Ctx.makeConst(7)->constValue(), 7);
}

TEST_F(SymExprTest, NamedSymbolsIntern) {
  SymExpr N1 = Ctx.makeSym("n");
  SymExpr N2 = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_EQ(N1, N2);
  EXPECT_NE(N1, M);
  EXPECT_EQ(N1->str(), "n");
}

TEST_F(SymExprTest, FreshSymbolsAreUnique) {
  SymExpr A = Ctx.freshSym("sigma");
  SymExpr B = Ctx.freshSym("sigma");
  EXPECT_NE(A, B);
}

TEST_F(SymExprTest, AddFoldsConstants) {
  SymExpr E = Ctx.add(Ctx.makeConst(2), Ctx.makeConst(3));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), 5);
}

TEST_F(SymExprTest, AddIsCommutativeViaCanonicalization) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_EQ(Ctx.add(N, M), Ctx.add(M, N));
}

TEST_F(SymExprTest, AddCollectsLikeTerms) {
  SymExpr N = Ctx.makeSym("n");
  // n + n == 2*n.
  SymExpr TwoN = Ctx.add(N, N);
  EXPECT_EQ(TwoN, Ctx.mul(Ctx.makeConst(2), N));
  // n - n == 0.
  SymExpr Zero = Ctx.sub(N, N);
  ASSERT_TRUE(Zero->isConst());
  EXPECT_EQ(Zero->constValue(), 0);
}

TEST_F(SymExprTest, SubThenAddRoundTrips) {
  SymExpr N = Ctx.makeSym("n");
  // (n - 1) + 1 == n.
  SymExpr E = Ctx.add(Ctx.sub(N, Ctx.makeConst(1)), Ctx.makeConst(1));
  EXPECT_EQ(E, N);
}

TEST_F(SymExprTest, MulFoldsAndSorts) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_EQ(Ctx.mul(N, M), Ctx.mul(M, N));
  SymExpr E = Ctx.mul(Ctx.makeConst(3), Ctx.makeConst(4));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), 12);
}

TEST_F(SymExprTest, MulByZeroCollapses) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr E = Ctx.mul(N, Ctx.makeConst(0));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), 0);
}

TEST_F(SymExprTest, MulByOneIsIdentity) {
  SymExpr N = Ctx.makeSym("n");
  EXPECT_EQ(Ctx.mul(N, Ctx.makeConst(1)), N);
}

TEST_F(SymExprTest, MulFlattensNestedProducts) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  SymExpr K = Ctx.makeSym("k");
  EXPECT_EQ(Ctx.mul(Ctx.mul(N, M), K), Ctx.mul(N, Ctx.mul(M, K)));
}

TEST_F(SymExprTest, MaxDedupesAndFolds) {
  SymExpr N = Ctx.makeSym("n");
  EXPECT_EQ(Ctx.max(N, N), N);
  SymExpr E = Ctx.max(Ctx.makeConst(3), Ctx.makeConst(9));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), 9);
}

TEST_F(SymExprTest, MaxDropsRedundantNonpositiveConst) {
  SymExpr N = Ctx.makeSym("n"); // Non-negative by default.
  EXPECT_EQ(Ctx.max(N, Ctx.makeConst(0)), N);
}

TEST_F(SymExprTest, MaxFlattens) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  SymExpr K = Ctx.makeSym("k");
  EXPECT_EQ(Ctx.max(Ctx.max(N, M), K), Ctx.max(N, Ctx.max(M, K)));
}

TEST_F(SymExprTest, NumElements) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr E = Ctx.numElements({N, Ctx.makeConst(3)});
  EXPECT_EQ(E, Ctx.mul(Ctx.makeConst(3), N));
  EXPECT_EQ(Ctx.numElements({}), Ctx.makeConst(1));
}

TEST_F(SymExprTest, ProvablyLEEqualNodes) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr E1 = Ctx.add(N, Ctx.makeConst(1));
  SymExpr E2 = Ctx.add(Ctx.makeConst(1), N);
  EXPECT_TRUE(SymExprContext::provablyEq(E1, E2));
  EXPECT_TRUE(Ctx.provablyLE(E1, E2));
}

TEST_F(SymExprTest, ProvablyLEConstants) {
  EXPECT_TRUE(Ctx.provablyLE(Ctx.makeConst(3), Ctx.makeConst(4)));
  EXPECT_FALSE(Ctx.provablyLE(Ctx.makeConst(4), Ctx.makeConst(3)));
}

TEST_F(SymExprTest, ProvablyLEUnderMax) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  SymExpr MaxNM = Ctx.max(N, M);
  EXPECT_TRUE(Ctx.provablyLE(N, MaxNM));
  EXPECT_TRUE(Ctx.provablyLE(M, MaxNM));
  EXPECT_FALSE(Ctx.provablyLE(MaxNM, N));
  // max(n, m) <= max(n, max(m, k)).
  SymExpr K = Ctx.makeSym("k");
  EXPECT_TRUE(Ctx.provablyLE(MaxNM, Ctx.max(MaxNM, K)));
}

TEST_F(SymExprTest, ProvablyLEPlusNonnegative) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_TRUE(Ctx.provablyLE(N, Ctx.add(N, Ctx.makeConst(2))));
  EXPECT_TRUE(Ctx.provablyLE(N, Ctx.add(N, M)));
  // Not provable: n <= n - 1.
  EXPECT_FALSE(Ctx.provablyLE(N, Ctx.sub(N, Ctx.makeConst(1))));
}

TEST_F(SymExprTest, ProvablyLEIsConservativeForUnrelatedSyms) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_FALSE(Ctx.provablyLE(N, M));
  EXPECT_FALSE(Ctx.provablyLE(M, N));
}

TEST_F(SymExprTest, ProvablyNonneg) {
  SymExpr N = Ctx.makeSym("n");
  EXPECT_TRUE(Ctx.provablyNonneg(N));
  EXPECT_TRUE(Ctx.provablyNonneg(Ctx.mul(N, Ctx.makeConst(2))));
  EXPECT_FALSE(Ctx.provablyNonneg(Ctx.sub(N, Ctx.makeConst(1))));
  EXPECT_FALSE(Ctx.provablyNonneg(Ctx.makeConst(-1)));
  EXPECT_TRUE(Ctx.provablyNonneg(Ctx.max(Ctx.makeConst(-5), N)));
}

TEST_F(SymExprTest, StrRendering) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr E = Ctx.max(N, Ctx.makeConst(5));
  EXPECT_EQ(E->str(), "max(n, 5)");
}

//===----------------------------------------------------------------===//
// Canonicalization edge cases: shapes the range analysis now leans on
// when it publishes interval bounds per interned node. Interning is
// only sound if every algebraically-equal spelling reaches one node.
//===----------------------------------------------------------------===//

TEST_F(SymExprTest, SubIsAddOfNegated) {
  // n - m and n + (-1 * m) must intern to the same node, else a bound
  // published against one spelling is invisible to the other.
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_EQ(Ctx.sub(N, M), Ctx.add(N, Ctx.mul(Ctx.makeConst(-1), M)));
}

TEST_F(SymExprTest, NestedAddsFlattenAndCancel) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  // ((n + 2) + (m - 2)) == n + m.
  SymExpr E = Ctx.add(Ctx.add(N, Ctx.makeConst(2)),
                      Ctx.sub(M, Ctx.makeConst(2)));
  EXPECT_EQ(E, Ctx.add(N, M));
  // (n + m) - m - n == 0.
  SymExpr Z = Ctx.sub(Ctx.sub(Ctx.add(N, M), M), N);
  ASSERT_TRUE(Z->isConst());
  EXPECT_EQ(Z->constValue(), 0);
}

TEST_F(SymExprTest, NestedSumsFlattenBeforeCollecting) {
  // (n+3) + (n+3) flattens into one sum and collects to 2*n + 6; the
  // unflattened spelling must reach the same node as building the
  // flat form directly. (Products are NOT distributed over sums, so
  // 2*(n+3) stays a distinct node -- constants only fold inside one
  // flattened sum.)
  SymExpr N = Ctx.makeSym("n");
  SymExpr E = Ctx.add(N, Ctx.makeConst(3));
  SymExpr Flat = Ctx.add(Ctx.mul(Ctx.makeConst(2), N), Ctx.makeConst(6));
  EXPECT_EQ(Ctx.add(E, E), Flat);
  // Termwise cancellation works against the flattened spelling.
  SymExpr Z = Ctx.sub(Ctx.sub(Ctx.add(E, E), Ctx.makeConst(6)),
                      Ctx.mul(Ctx.makeConst(2), N));
  ASSERT_TRUE(Z->isConst());
  EXPECT_EQ(Z->constValue(), 0);
}

TEST_F(SymExprTest, MaxOfSingletonIsIdentity) {
  SymExpr N = Ctx.makeSym("n");
  EXPECT_EQ(Ctx.max({N}), N);
  EXPECT_EQ(Ctx.max(std::vector<SymExpr>{Ctx.makeConst(7)}),
            Ctx.makeConst(7));
}

TEST_F(SymExprTest, MaxNestedDedupes) {
  // max(n, max(m, n)) == max(n, m): flattening must dedupe across
  // nesting levels, not only among immediate arguments.
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  EXPECT_EQ(Ctx.max(N, Ctx.max(M, N)), Ctx.max(N, M));
}

TEST_F(SymExprTest, NumElementsDropsUnitAndPropagatesZero) {
  SymExpr N = Ctx.makeSym("n");
  // numel([1, n, 1]) == n; a zero extent annihilates the product.
  EXPECT_EQ(Ctx.numElements({Ctx.makeConst(1), N, Ctx.makeConst(1)}), N);
  SymExpr Z =
      Ctx.numElements({N, Ctx.makeConst(0), Ctx.makeSym("m")});
  ASSERT_TRUE(Z->isConst());
  EXPECT_EQ(Z->constValue(), 0);
}

TEST_F(SymExprTest, FreshSymsGetDistinctSpellings) {
  // Each freshSym call mints a new spelling; the analysis keys bound
  // tables on node identity, so two fresh extents must never alias.
  SymExpr A = Ctx.freshSym("$s");
  SymExpr B = Ctx.freshSym("$s");
  EXPECT_NE(A, B);
  EXPECT_NE(A->symName(), B->symName());
  // Re-spelling an existing fresh name DOES intern to the same node:
  // identity is the name, freshness comes only from the counter.
  EXPECT_EQ(Ctx.makeSym(A->symName()), A);
}

TEST_F(SymExprTest, ConstBoundsThroughMixedExpressions) {
  // constLowerBound is the piece staticSizeBytes trusts for the "never
  // negative" argument; spot-check it through sums, products, and max.
  SymExpr N = Ctx.makeSym("n"); // Nonneg.
  EXPECT_GE(Ctx.constLowerBound(Ctx.add(N, Ctx.makeConst(3))), 3);
  EXPECT_GE(Ctx.constLowerBound(Ctx.mul(Ctx.makeConst(2), N)), 0);
  EXPECT_GE(Ctx.constLowerBound(Ctx.max(N, Ctx.makeConst(5))), 5);
}

TEST_F(SymExprTest, ProvablyLEThroughProductsOfNonnegatives) {
  SymExpr N = Ctx.makeSym("n");
  SymExpr M = Ctx.makeSym("m");
  // n*m <= n*m trivially; and monotone growth by a nonnegative term.
  SymExpr NM = Ctx.mul(N, M);
  EXPECT_TRUE(Ctx.provablyLE(NM, Ctx.add(NM, N)));
  // Not provable without sign knowledge of the difference.
  EXPECT_FALSE(Ctx.provablyLE(Ctx.add(NM, N), NM));
}

// Property-style sweep: algebraic identities hold for arbitrary small
// expression shapes.
class SymExprPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SymExprPropertyTest, AddMulDistributeOverConstants) {
  SymExprContext Ctx;
  int K = GetParam();
  SymExpr N = Ctx.makeSym("n");
  // (n + k) - k == n.
  SymExpr E =
      Ctx.sub(Ctx.add(N, Ctx.makeConst(K)), Ctx.makeConst(K));
  EXPECT_EQ(E, N);
  // k*n + k*n == 2*k*n.
  SymExpr KN = Ctx.mul(Ctx.makeConst(K), N);
  EXPECT_EQ(Ctx.add(KN, KN), Ctx.mul(Ctx.makeConst(2 * K), N));
  // max is idempotent under self.
  SymExpr MX = Ctx.max(KN, N);
  EXPECT_EQ(Ctx.max(MX, MX), MX);
}

INSTANTIATE_TEST_SUITE_P(Constants, SymExprPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 100, 451));

} // namespace
