//===- BitVectorTest.cpp - Dense bit vector unit tests --------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

#include <set>

using namespace matcoal;

namespace {

TEST(BitVector, SetTestReset) {
  BitVector V(130);
  EXPECT_FALSE(V.test(0));
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVector, UnionReportsChange) {
  BitVector A(100), B(100);
  A.set(3);
  B.set(3);
  EXPECT_FALSE(A.unionWith(B));
  B.set(99);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(99));
}

TEST(BitVector, IntersectAndSubtract) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(65);
  A.set(30);
  B.set(65);
  B.set(30);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_FALSE(I.test(1));
  EXPECT_TRUE(I.test(65));
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(65));
  EXPECT_FALSE(A.test(30));
}

TEST(BitVector, ForEachVisitsInOrder) {
  BitVector V(200);
  std::set<unsigned> Expected = {0, 5, 63, 64, 127, 128, 199};
  for (unsigned I : Expected)
    V.set(I);
  std::vector<unsigned> Seen;
  V.forEach([&](unsigned I) { Seen.push_back(I); });
  EXPECT_EQ(Seen.size(), Expected.size());
  EXPECT_TRUE(std::is_sorted(Seen.begin(), Seen.end()));
  for (unsigned I : Seen)
    EXPECT_TRUE(Expected.count(I));
}

TEST(BitVector, ClearAndAny) {
  BitVector V(10);
  EXPECT_FALSE(V.any());
  V.set(7);
  EXPECT_TRUE(V.any());
  V.clear();
  EXPECT_FALSE(V.any());
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVector, EqualityRequiresSameContents) {
  BitVector A(64), B(64);
  EXPECT_TRUE(A == B);
  A.set(63);
  EXPECT_FALSE(A == B);
  B.set(63);
  EXPECT_TRUE(A == B);
}

} // namespace
