//===- DiagnosticsTest.cpp ------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

TEST(Diagnostics, CountsErrorsOnly) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc{1, 1}, "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc{2, 5}, "something bad");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 2u);
}

TEST(Diagnostics, Rendering) {
  Diagnostics D;
  D.error(SourceLoc{3, 7}, "expected expression");
  EXPECT_EQ(D.str(), "3:7: error: expected expression\n");
}

TEST(Diagnostics, UnknownLocation) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(Diagnostics, ClearResets) {
  Diagnostics D;
  D.error(SourceLoc{1, 1}, "boom");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

} // namespace
