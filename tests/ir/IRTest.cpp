//===- IRTest.cpp - Unit tests for the SO-form IR -------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

// Builds: entry -> (then | else) -> exit with a phi in exit.
std::unique_ptr<Function> makeDiamond() {
  auto F = std::make_unique<Function>();
  F->Name = "diamond";
  BasicBlock *Entry = F->addBlock();
  BasicBlock *Then = F->addBlock();
  BasicBlock *Else = F->addBlock();
  BasicBlock *Exit = F->addBlock();

  VarId C = F->getOrCreateVar("c");
  VarId X = F->getOrCreateVar("x");

  Instr CDef;
  CDef.Op = Opcode::ConstNum;
  CDef.NumRe = 1;
  CDef.Results = {C};
  Entry->Instrs.push_back(CDef);
  Instr Br;
  Br.Op = Opcode::Br;
  Br.Operands = {C};
  Br.Target1 = Then->Id;
  Br.Target2 = Else->Id;
  Entry->Instrs.push_back(Br);

  Instr T1;
  T1.Op = Opcode::ConstNum;
  T1.NumRe = 2;
  T1.Results = {X};
  Then->Instrs.push_back(T1);
  Instr J1;
  J1.Op = Opcode::Jmp;
  J1.Target1 = Exit->Id;
  Then->Instrs.push_back(J1);

  Instr T2;
  T2.Op = Opcode::ConstNum;
  T2.NumRe = 3;
  T2.Results = {X};
  Else->Instrs.push_back(T2);
  Instr J2;
  J2.Op = Opcode::Jmp;
  J2.Target1 = Exit->Id;
  Else->Instrs.push_back(J2);

  Instr Ret;
  Ret.Op = Opcode::Ret;
  Exit->Instrs.push_back(Ret);

  F->recomputePreds();
  return F;
}

TEST(IR, SuccessorsAndPreds) {
  auto F = makeDiamond();
  EXPECT_EQ(F->entry()->successors(), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(F->block(3)->Preds.size(), 2u);
  EXPECT_TRUE(F->entry()->Preds.empty());
}

TEST(IR, ReversePostOrderStartsAtEntryEndsAtExit) {
  auto F = makeDiamond();
  auto RPO = F->reversePostOrder();
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), 0);
  EXPECT_EQ(RPO.back(), 3);
}

TEST(IR, ReversePostOrderSkipsUnreachable) {
  auto F = makeDiamond();
  F->addBlock(); // Unreachable, no terminator.
  auto RPO = F->reversePostOrder();
  EXPECT_EQ(RPO.size(), 4u);
}

TEST(IR, VarCreation) {
  Function F;
  VarId A = F.getOrCreateVar("a");
  VarId A2 = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  VarId T = F.makeTemp();
  EXPECT_TRUE(F.var(T).IsTemp);
  VarId V = F.makeVersion(A, 2);
  EXPECT_EQ(F.var(V).Base, "a");
  EXPECT_EQ(F.var(V).Version, 2);
  EXPECT_EQ(F.var(V).Name, "a.2");
}

TEST(IR, VerifyCleanFunction) {
  auto F = makeDiamond();
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(*F, Diags)) << Diags.str();
}

TEST(IR, VerifyCatchesMissingTerminator) {
  auto F = makeDiamond();
  F->block(3)->Instrs.clear();
  Diagnostics Diags;
  EXPECT_FALSE(verifyFunction(*F, Diags));
}

TEST(IR, VerifyCatchesPhiOperandMismatch) {
  auto F = makeDiamond();
  Instr Phi;
  Phi.Op = Opcode::Phi;
  Phi.Results = {F->getOrCreateVar("x")};
  Phi.Operands = {F->getOrCreateVar("x")}; // Exit has 2 preds.
  auto &Instrs = F->block(3)->Instrs;
  Instrs.insert(Instrs.begin(), Phi);
  Diagnostics Diags;
  EXPECT_FALSE(verifyFunction(*F, Diags));
}

TEST(IR, VerifyCatchesBadBranchTarget) {
  auto F = makeDiamond();
  F->block(1)->Instrs.back().Target1 = 99;
  Diagnostics Diags;
  EXPECT_FALSE(verifyFunction(*F, Diags));
}

TEST(IR, PrinterMentionsBlocksAndOps) {
  auto F = makeDiamond();
  std::string S = F->str();
  EXPECT_NE(S.find("bb0"), std::string::npos);
  EXPECT_NE(S.find("constnum"), std::string::npos);
  EXPECT_NE(S.find("br"), std::string::npos);
}

TEST(IR, OpcodeProperties) {
  EXPECT_TRUE(isTerminator(Opcode::Jmp));
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_TRUE(isPure(Opcode::Add));
  EXPECT_FALSE(isPure(Opcode::Display));
  EXPECT_FALSE(isPure(Opcode::Call));
}

TEST(IR, ModuleLookup) {
  Module M;
  Function *F = M.addFunction("foo");
  EXPECT_EQ(M.findFunction("foo"), F);
  EXPECT_EQ(M.findFunction("bar"), nullptr);
}

} // namespace
