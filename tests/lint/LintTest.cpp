//===- LintTest.cpp - Golden tests for the matlint checks -----------------===//
//
// Each case under cases/ seeds exactly one defect and declares the
// diagnostics it must produce with "% expect: <check-id>" lines. The
// test compares the SET of check ids fired against the declared set, so
// a check that goes quiet on its own golden -- or one that starts
// misfiring on another check's golden -- both fail.
//
// The second suite runs every Table 1 benchmark program through the
// linter and requires silence: the paper's suite is clean code, and a
// diagnostic there would be a false positive by construction.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"

#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <string>

using namespace matcoal;

namespace {

std::string readCase(const std::string &Name) {
  std::string Path = std::string(LINT_CASES_DIR) + "/" + Name + ".m";
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing golden case " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Pulls the "% expect: <id>" declarations out of a case's source.
std::set<std::string> expectedIds(const std::string &Source) {
  std::set<std::string> Ids;
  std::istringstream In(Source);
  std::string Line;
  const std::string Marker = "% expect:";
  while (std::getline(In, Line)) {
    size_t At = Line.find(Marker);
    if (At == std::string::npos)
      continue;
    std::string Id = Line.substr(At + Marker.size());
    Id.erase(0, Id.find_first_not_of(" \t"));
    Id.erase(Id.find_last_not_of(" \t\r") + 1);
    if (!Id.empty())
      Ids.insert(Id);
  }
  return Ids;
}

/// Pulls an optional "% fault: <name>" directive out of a case's source.
/// Auditor-produced checks fire on corrupted storage plans, not on any
/// lintable source, so their goldens opt into the same fault injection
/// MATCOAL_FAULT exposes.
std::string declaredFault(const std::string &Source) {
  std::istringstream In(Source);
  std::string Line;
  const std::string Marker = "% fault:";
  while (std::getline(In, Line)) {
    size_t At = Line.find(Marker);
    if (At == std::string::npos)
      continue;
    std::string Name = Line.substr(At + Marker.size());
    Name.erase(0, Name.find_first_not_of(" \t"));
    Name.erase(Name.find_last_not_of(" \t\r") + 1);
    return Name;
  }
  return "";
}

std::set<std::string> lintIds(const std::string &Source) {
  CompileOptions Opts;
  Opts.Lint = true;
  if (declaredFault(Source) == "plan-corrupt")
    Opts.InjectPlanCorrupt = true;
  Diagnostics Diags;
  auto P = compileSource(Source, Diags, Opts);
  EXPECT_NE(P, nullptr) << Diags.str();
  std::set<std::string> Ids;
  if (P)
    for (const LintDiag &D : P->lintDiags())
      Ids.insert(lintCheckId(D.Check));
  return Ids;
}

std::string joined(const std::set<std::string> &Ids) {
  std::string Out;
  for (const std::string &Id : Ids)
    Out += (Out.empty() ? "" : ", ") + Id;
  return Out.empty() ? "<none>" : Out;
}

class LintGoldenTest : public ::testing::TestWithParam<const char *> {};

TEST_P(LintGoldenTest, FiresExactlyTheDeclaredChecks) {
  std::string Source = readCase(GetParam());
  ASSERT_FALSE(Source.empty());
  std::set<std::string> Want = expectedIds(Source);
  std::set<std::string> Got = lintIds(Source);
  EXPECT_EQ(Want, Got) << "expected {" << joined(Want) << "} but lint fired {"
                       << joined(Got) << "}";
}

INSTANTIATE_TEST_SUITE_P(Cases, LintGoldenTest,
                         ::testing::Values("growth_in_loop", "out_of_bounds",
                                           "dead_store", "maybe_undefined",
                                           "shape_mismatch", "plan_corrupt",
                                           "clean"),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

TEST(LintRegistry, EveryCheckHasAGoldenCase) {
  // Each registered check id must appear as an expectation in some
  // golden case; a new check without a golden is untested.
  std::set<std::string> Declared;
  for (const char *Name : {"growth_in_loop", "out_of_bounds", "dead_store",
                           "maybe_undefined", "shape_mismatch",
                           "plan_corrupt"})
    for (const std::string &Id : expectedIds(readCase(Name)))
      Declared.insert(Id);
  // Two auditor checks cannot fire through any source + fault golden:
  // the plan-corrupt mutation provably cannot construct their
  // preconditions (an operand sharing the moved slot would have had to
  // interfere with the corruption witness). They are pinned instead by
  // direct unit tests over hand-built plans in
  // tests/verify/PlanAuditTest.cpp.
  const std::set<std::string> AuditorOnly = {"matvet-unsafe-inplace",
                                             "matvet-multi-use-elide"};
  for (const LintCheckInfo &Info : lintRegistry()) {
    if (AuditorOnly.count(Info.Id))
      continue;
    EXPECT_TRUE(Declared.count(Info.Id))
        << "check '" << Info.Id << "' has no golden case";
  }
}

TEST(LintRegistry, IdsRoundTrip) {
  for (const LintCheckInfo &Info : lintRegistry())
    EXPECT_STREQ(lintCheckId(Info.Check), Info.Id);
}

class LintSuiteSilenceTest
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(LintSuiteSilenceTest, BenchmarkProgramsAreClean) {
  const BenchmarkProgram &Prog = *GetParam();
  std::set<std::string> Got = lintIds(Prog.Source);
  EXPECT_TRUE(Got.empty()) << Prog.Name << " fired {" << joined(Got) << "}";
}

std::vector<const BenchmarkProgram *> suitePrograms() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &P : benchmarkSuite())
    Out.push_back(&P);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Table1, LintSuiteSilenceTest,
                         ::testing::ValuesIn(suitePrograms()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
