% Seeded defect: the first assignment to 'x' is overwritten before any
% read. The definition is a call, so dead-code cleanup keeps it and the
% lint pass gets to point at it.
% expect: dead-store
x = rand();
x = 5;
disp(x);
