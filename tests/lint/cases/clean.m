% A well-behaved program: preallocated accumulation, in-bounds reads,
% every store read, every variable defined on every path, conforming
% shapes. Expects no findings at all.
n = 8;
a = zeros(1, n);
i = 1;
while i <= n
a(i) = i * i;
i = i + 1;
end
s = 0;
j = 1;
while j <= n
s = s + a(j);
j = j + 1;
end
disp(s);
