% Seeded defect: elementwise addition of two arrays whose constant
% inferred shapes can never conform.
% expect: shape-mismatch
a = zeros(2, 3);
b = zeros(4, 5);
c = a + b;
disp(c);
