% Seeded defect: the classic "preallocate me" pattern. 'a' enters the
% loop as a 1x1 and is written up to index 10, so every iteration past
% the first reallocates. zeros(1, 10) before the loop fixes it.
% expect: growth-in-loop
a = zeros(1, 1);
i = 1;
while i <= 10
a(i) = i * 2;
i = i + 1;
end
disp(a);
