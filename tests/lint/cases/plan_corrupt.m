% A clean program run under the plan-corrupt fault (declared by the
% directive below): after gctd plans storage, one variable is moved into a
% coalesced group whose occupant is still live at the move's definition.
% The static plan auditor must re-prove the plan independently of the
% interference graph and flag the clobber; nothing else may fire.
% fault: plan-corrupt
% expect: matvet-plan-overlap
n = 8;
A = rand(n, n);
B = A * A;
C = B + B;
D = C - A;
s = sum(sum(D));
fprintf('%.6f\n', s);
