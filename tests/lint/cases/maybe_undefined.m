% Seeded defect: 'x' is only assigned on the true branch, so the disp
% reads an undefined variable whenever rand() <= 0.5.
% expect: maybe-undefined
if rand() > 0.5
x = 1;
end
disp(x);
