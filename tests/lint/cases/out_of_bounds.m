% Seeded defect: a read whose subscript interval lies entirely past the
% array's maximum possible element count -- a proof of a run-time fault.
% expect: out-of-bounds
a = zeros(2, 2);
x = a(9);
disp(x);
