//===- TypeInferenceTest.cpp - Type/shape inference tests -----------------===//

#include "typeinf/TypeInference.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

/// End-to-end fixture: source -> SSA -> cleanup -> types.
struct Inferred {
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
  Diagnostics Diags;

  Function &fn(const std::string &Name = "main") {
    return *M->findFunction(Name);
  }

  /// Type of the highest SSA version of the source variable \p Base.
  const VarType &typeOf(const std::string &Base,
                        const std::string &Fn = "main") {
    Function &F = fn(Fn);
    VarId Best = NoVar;
    int BestVer = -2;
    for (unsigned V = 0; V < F.numVars(); ++V)
      if (F.var(V).Base == Base && F.var(V).Version > BestVer) {
        Best = static_cast<VarId>(V);
        BestVer = F.var(V).Version;
      }
    EXPECT_NE(Best, NoVar) << "no variable named " << Base;
    return TI->typeOf(F, Best);
  }
};

Inferred infer(const std::string &Src) {
  Inferred R;
  auto Prog = parseProgram(Src, R.Diags);
  EXPECT_NE(Prog, nullptr) << R.Diags.str();
  R.M = lowerProgram(*Prog, R.Diags);
  EXPECT_NE(R.M, nullptr) << R.Diags.str();
  for (auto &F : R.M->Functions) {
    EXPECT_TRUE(buildSSA(*F, R.Diags)) << R.Diags.str();
    runCleanupPipeline(*F);
  }
  R.Ctx = std::make_unique<SymExprContext>();
  R.TI = std::make_unique<TypeInference>(*R.M, *R.Ctx, R.Diags);
  R.TI->run("main");
  return R;
}

TEST(TypeInference, ScalarLiterals) {
  auto R = infer("a = 1; b = 2.5; c = 3i; d = 0;\n"
                 "disp(a); disp(b); disp(c); disp(d);\n");
  EXPECT_EQ(R.typeOf("a").IT, IntrinsicType::Bool); // Value in {0,1}.
  EXPECT_EQ(R.typeOf("b").IT, IntrinsicType::Real);
  EXPECT_EQ(R.typeOf("c").IT, IntrinsicType::Complex);
  EXPECT_EQ(R.typeOf("d").IT, IntrinsicType::Bool);
  EXPECT_TRUE(R.typeOf("a").isScalar());
}

TEST(TypeInference, IntegerLiteral) {
  auto R = infer("a = 7;\ndisp(a);\n");
  EXPECT_EQ(R.typeOf("a").IT, IntrinsicType::Int);
  ASSERT_NE(R.typeOf("a").ValExpr, nullptr);
  EXPECT_EQ(R.typeOf("a").ValExpr->constValue(), 7);
}

TEST(TypeInference, ZerosKnownShape) {
  auto R = infer("a = zeros(4, 5);\ndisp(a);\n");
  const VarType &T = R.typeOf("a");
  ASSERT_EQ(T.Extents.size(), 2u);
  EXPECT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.Extents[0]->constValue(), 4);
  EXPECT_EQ(T.Extents[1]->constValue(), 5);
  EXPECT_EQ(T.knownNumElements(), 20);
}

TEST(TypeInference, ZerosSquareForm) {
  auto R = infer("a = zeros(7);\ndisp(a);\n");
  const VarType &T = R.typeOf("a");
  EXPECT_EQ(T.knownNumElements(), 49);
}

TEST(TypeInference, ZerosThreeD) {
  auto R = infer("a = zeros(2, 3, 4);\ndisp(a);\n");
  const VarType &T = R.typeOf("a");
  ASSERT_EQ(T.Extents.size(), 3u);
  EXPECT_EQ(T.knownNumElements(), 24);
}

TEST(TypeInference, ShapeExpressionFromArithmetic) {
  // zeros(n-1, 1) with n = 321 resolves to an explicit 320 x 1 shape.
  auto R = infer("n = 321;\nx = zeros(n - 1, 1);\ndisp(x);\n");
  const VarType &T = R.typeOf("x");
  ASSERT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.Extents[0]->constValue(), 320);
}

TEST(TypeInference, ElementwiseSharesShapeExpression) {
  // Paper Example 1: all elementwise results share s(t0).
  auto R = infer("t0 = rand(3, 7);\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\n"
                 "t3 = tan(t2);\ndisp(t3);\n");
  const VarType &T0 = R.typeOf("t0");
  const VarType &T1 = R.typeOf("t1");
  const VarType &T2 = R.typeOf("t2");
  const VarType &T3 = R.typeOf("t3");
  EXPECT_EQ(T0.Extents, T1.Extents);
  EXPECT_EQ(T1.Extents, T2.Extents);
  EXPECT_EQ(T2.Extents, T3.Extents);
}

TEST(TypeInference, ElementwiseSharesSymbolicShape) {
  // Same, but with a symbolic source shape (rand(n, m), n m unknown at
  // the call through a function boundary).
  auto R = infer("function main\nx = work(rand(4, 4));\ndisp(x);\n\n"
                 "function y = work(a)\nb = a + 1;\nc = sin(b);\ny = c .* 2;"
                 "\n");
  const VarType &A = R.typeOf("a", "work");
  const VarType &B = R.typeOf("b", "work");
  const VarType &C = R.typeOf("c", "work");
  EXPECT_EQ(A.Extents, B.Extents);
  EXPECT_EQ(B.Extents, C.Extents);
}

TEST(TypeInference, ComparisonIsBool) {
  auto R = infer("a = rand(3, 3);\nm = a > 0.5;\ndisp(m);\n");
  EXPECT_EQ(R.typeOf("m").IT, IntrinsicType::Bool);
  EXPECT_EQ(R.typeOf("m").Extents, R.typeOf("a").Extents);
}

TEST(TypeInference, EyeIsBoolean) {
  // Paper Example 2: eye() contents are in {0, 1}.
  auto R = infer("a = eye(4, 4);\ndisp(a);\n");
  EXPECT_EQ(R.typeOf("a").IT, IntrinsicType::Bool);
}

TEST(TypeInference, SubsasgnGrowthKeepsContainment) {
  // Paper Example 2: b = subsasgn(a, ...) must satisfy extent(a) <=
  // extent(b) provably, even when sizes are symbolic.
  auto R = infer("function main\nn = round(rand() * 6) + 2;\nx = work(n);\n"
                 "disp(x);\n\n"
                 "function a = work(n)\na = eye(n, n);\na(n + 2, 1) = 1;\n");
  Function &Work = *R.M->findFunction("work");
  // Find the eye() result (version 0 of 'a') and the subsasgn result.
  VarId AInit = NoVar, AGrown = NoVar;
  for (unsigned V = 0; V < Work.numVars(); ++V) {
    if (Work.var(V).Base != "a")
      continue;
    if (Work.var(V).Version == 0)
      AInit = static_cast<VarId>(V);
    if (Work.var(V).Version == 1)
      AGrown = static_cast<VarId>(V);
  }
  ASSERT_NE(AInit, NoVar);
  ASSERT_NE(AGrown, NoVar);
  const VarType &A = R.TI->typeOf(Work, AInit);
  const VarType &B = R.TI->typeOf(Work, AGrown);
  ASSERT_EQ(A.Extents.size(), 2u);
  ASSERT_EQ(B.Extents.size(), 2u);
  SymExprContext &Ctx = R.TI->context();
  EXPECT_TRUE(Ctx.provablyLE(A.Extents[0], B.Extents[0]))
      << A.Extents[0]->str() << " vs " << B.Extents[0]->str();
  EXPECT_TRUE(Ctx.provablyLE(A.Extents[1], B.Extents[1]));
  // Both are BOOLEAN (eye contents and the value 1).
  EXPECT_EQ(A.IT, IntrinsicType::Bool);
  EXPECT_EQ(B.IT, IntrinsicType::Bool);
}

TEST(TypeInference, SubsasgnScalarIndexKnownShape) {
  auto R = infer("a = zeros(4, 4);\na(2, 2) = 5;\ndisp(a);\n");
  const VarType &T = R.typeOf("a");
  EXPECT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.knownNumElements(), 16);
}

TEST(TypeInference, SubsasgnExpandsKnownShape) {
  auto R = infer("a = zeros(4, 4);\na(6, 2) = 5;\ndisp(a);\n");
  const VarType &T = R.typeOf("a");
  EXPECT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.Extents[0]->constValue(), 6);
  EXPECT_EQ(T.Extents[1]->constValue(), 4);
}

TEST(TypeInference, SubsrefScalar) {
  auto R = infer("a = rand(4, 4);\nx = a(2, 3);\ndisp(x);\n");
  EXPECT_TRUE(R.typeOf("x").isScalar());
  EXPECT_EQ(R.typeOf("x").IT, IntrinsicType::Real);
}

TEST(TypeInference, SubsrefColumnSlice) {
  auto R = infer("a = rand(4, 7);\nc = a(:, 2);\ndisp(c);\n");
  const VarType &T = R.typeOf("c");
  ASSERT_EQ(T.Extents.size(), 2u);
  EXPECT_EQ(T.Extents[0]->constValue(), 4);
  EXPECT_EQ(T.Extents[1]->constValue(), 1);
}

TEST(TypeInference, SizeFeedsShapes) {
  // m = size(a, 1) has a's first extent as its symbolic value, so
  // zeros(m, 1) shares that extent.
  auto R = infer("function main\nx = work(rand(5, 3));\ndisp(x);\n\n"
                 "function b = work(a)\nm = size(a, 1);\nb = zeros(m, 1);\n");
  const VarType &A = R.typeOf("a", "work");
  const VarType &B = R.typeOf("b", "work");
  ASSERT_GE(A.Extents.size(), 1u);
  ASSERT_GE(B.Extents.size(), 1u);
  EXPECT_EQ(B.Extents[0], A.Extents[0]);
}

TEST(TypeInference, RangeLength) {
  auto R = infer("v = 3:10;\ndisp(v);\n");
  const VarType &T = R.typeOf("v");
  ASSERT_EQ(T.Extents.size(), 2u);
  EXPECT_EQ(T.Extents[0]->constValue(), 1);
  EXPECT_EQ(T.Extents[1]->constValue(), 8);
}

TEST(TypeInference, RangeWithStepLength) {
  auto R = infer("v = 1:2:10;\ndisp(v);\n");
  const VarType &T = R.typeOf("v");
  EXPECT_EQ(T.Extents[1]->constValue(), 5);
}

TEST(TypeInference, LoopGrowthWidens) {
  // An array growing inside a loop cannot keep a known shape; inference
  // must terminate and produce a symbolic extent.
  auto R = infer("v = [];\nfor k = 1:10\nv(k) = k * k;\nend\ndisp(v);\n");
  const VarType &T = R.typeOf("v");
  ASSERT_EQ(T.Extents.size(), 2u);
  EXPECT_FALSE(T.hasKnownShape());
}

TEST(TypeInference, InterproceduralOutputTypes) {
  auto R = infer("function main\ny = sq(3);\ndisp(y);\n\n"
                 "function y = sq(x)\ny = x * x;\n");
  EXPECT_EQ(R.typeOf("y", "main").IT, IntrinsicType::Int);
  EXPECT_TRUE(R.typeOf("y", "main").isScalar());
}

TEST(TypeInference, InterproceduralShapeFlows) {
  auto R = infer("function main\nb = pad(zeros(3, 9));\ndisp(b);\n\n"
                 "function y = pad(a)\ny = a + 1;\n");
  const VarType &B = R.typeOf("b", "main");
  ASSERT_EQ(B.Extents.size(), 2u);
  EXPECT_TRUE(B.hasKnownShape());
  EXPECT_EQ(B.Extents[1]->constValue(), 9);
}

TEST(TypeInference, MatMulShape) {
  auto R = infer("a = rand(3, 5);\nb = rand(5, 2);\nc = a * b;\ndisp(c);\n");
  const VarType &T = R.typeOf("c");
  ASSERT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.Extents[0]->constValue(), 3);
  EXPECT_EQ(T.Extents[1]->constValue(), 2);
}

TEST(TypeInference, ScalarTimesMatrixKeepsShape) {
  auto R = infer("a = rand(3, 5);\nc = 2 * a;\ndisp(c);\n");
  EXPECT_EQ(R.typeOf("c").Extents, R.typeOf("a").Extents);
}

TEST(TypeInference, TransposeSwapsExtents) {
  auto R = infer("a = rand(3, 5);\nb = a';\ndisp(b);\n");
  const VarType &T = R.typeOf("b");
  EXPECT_EQ(T.Extents[0]->constValue(), 5);
  EXPECT_EQ(T.Extents[1]->constValue(), 3);
}

TEST(TypeInference, ComplexPropagation) {
  auto R = infer("z = exp(2i);\nw = z + 1;\ndisp(w);\n");
  EXPECT_EQ(R.typeOf("z").IT, IntrinsicType::Complex);
  EXPECT_EQ(R.typeOf("w").IT, IntrinsicType::Complex);
}

TEST(TypeInference, SqrtOfUnknownIsComplex) {
  auto R = infer("a = rand() - 0.5;\ns = sqrt(a);\ndisp(s);\n");
  EXPECT_EQ(R.typeOf("s").IT, IntrinsicType::Complex);
}

TEST(TypeInference, SqrtOfBooleanIsReal) {
  // Boolean contents are in {0, 1}: provably non-negative, so sqrt stays
  // real rather than escaping to complex.
  auto R = infer("x = zeros(3, 3);\ns = sqrt(x);\ndisp(s);\n");
  EXPECT_EQ(R.typeOf("s").IT, IntrinsicType::Real);
}

TEST(TypeInference, StringIsCharRow) {
  auto R = infer("s = 'hello';\ndisp(s);\n");
  const VarType &T = R.typeOf("s");
  EXPECT_EQ(T.IT, IntrinsicType::Char);
  EXPECT_EQ(T.Extents[1]->constValue(), 5);
}

TEST(TypeInference, ConcatShapes) {
  auto R = infer("a = [1, 2, 3];\nb = [a, a];\nc = [a; a];\n"
                 "disp(b); disp(c);\n");
  EXPECT_EQ(R.typeOf("b").Extents[1]->constValue(), 6);
  EXPECT_EQ(R.typeOf("c").Extents[0]->constValue(), 2);
  EXPECT_EQ(R.typeOf("c").Extents[1]->constValue(), 3);
}

TEST(TypeInference, PhiJoinOfEqualShapes) {
  auto R = infer("c = rand() > 0.5;\nif c\nx = zeros(4, 4);\nelse\n"
                 "x = ones(4, 4);\nend\ndisp(x);\n");
  const VarType &T = R.typeOf("x");
  EXPECT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.knownNumElements(), 16);
}

TEST(TypeInference, PhiJoinOfDifferentShapesIsSymbolic) {
  auto R = infer("c = rand() > 0.5;\nif c\nx = zeros(4, 4);\nelse\n"
                 "x = ones(2, 2);\nend\ndisp(x);\n");
  EXPECT_FALSE(R.typeOf("x").hasKnownShape());
}

TEST(TypeInference, WhileLoopScalarStaysScalar) {
  auto R = infer("k = 0;\nwhile k < 100\nk = k + 1;\nend\ndisp(k);\n");
  EXPECT_TRUE(R.typeOf("k").isScalar());
}

} // namespace
