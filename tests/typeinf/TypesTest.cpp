//===- TypesTest.cpp - Intrinsic-type lattice unit tests ------------------===//

#include "typeinf/Types.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

TEST(IntrinsicLattice, JoinIsCommutative) {
  const IntrinsicType All[] = {
      IntrinsicType::None, IntrinsicType::Bool,    IntrinsicType::Int,
      IntrinsicType::Char, IntrinsicType::Real,    IntrinsicType::Complex,
      IntrinsicType::Colon, IntrinsicType::Illegal};
  for (IntrinsicType A : All)
    for (IntrinsicType B : All)
      EXPECT_EQ(joinIntrinsic(A, B), joinIntrinsic(B, A))
          << intrinsicTypeName(A) << " vs " << intrinsicTypeName(B);
}

TEST(IntrinsicLattice, JoinIsIdempotentAndAssociative) {
  const IntrinsicType All[] = {
      IntrinsicType::None, IntrinsicType::Bool,    IntrinsicType::Int,
      IntrinsicType::Char, IntrinsicType::Real,    IntrinsicType::Complex,
      IntrinsicType::Colon, IntrinsicType::Illegal};
  for (IntrinsicType A : All) {
    EXPECT_EQ(joinIntrinsic(A, A), A);
    for (IntrinsicType B : All)
      for (IntrinsicType C : All)
        EXPECT_EQ(joinIntrinsic(joinIntrinsic(A, B), C),
                  joinIntrinsic(A, joinIntrinsic(B, C)));
  }
}

TEST(IntrinsicLattice, NoneIsBottom) {
  EXPECT_EQ(joinIntrinsic(IntrinsicType::None, IntrinsicType::Real),
            IntrinsicType::Real);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::None, IntrinsicType::Bool),
            IntrinsicType::Bool);
}

TEST(IntrinsicLattice, NumericChainOrder) {
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Bool, IntrinsicType::Int),
            IntrinsicType::Int);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Int, IntrinsicType::Real),
            IntrinsicType::Real);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Real, IntrinsicType::Complex),
            IntrinsicType::Complex);
}

TEST(IntrinsicLattice, CharJoinsToRealOrComplex) {
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Char, IntrinsicType::Int),
            IntrinsicType::Real);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Char, IntrinsicType::Complex),
            IntrinsicType::Complex);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Char, IntrinsicType::Char),
            IntrinsicType::Char);
}

TEST(IntrinsicLattice, ColonOnlyJoinsWithItself) {
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Colon, IntrinsicType::Colon),
            IntrinsicType::Colon);
  EXPECT_EQ(joinIntrinsic(IntrinsicType::Colon, IntrinsicType::Real),
            IntrinsicType::Illegal);
}

TEST(IntrinsicLattice, ElementSizes) {
  // The paper's |t| factor: complex elements take twice a double.
  EXPECT_EQ(elemSizeBytes(IntrinsicType::Real), 8u);
  EXPECT_EQ(elemSizeBytes(IntrinsicType::Int), 8u);
  EXPECT_EQ(elemSizeBytes(IntrinsicType::Bool), 8u);
  EXPECT_EQ(elemSizeBytes(IntrinsicType::Complex), 16u);
  EXPECT_EQ(elemSizeBytes(IntrinsicType::Colon), 0u);
}

TEST(VarTypeTest, ScalarAndKnownShape) {
  SymExprContext Ctx;
  VarType T;
  T.IT = IntrinsicType::Real;
  T.Extents = {Ctx.makeConst(1), Ctx.makeConst(1)};
  EXPECT_TRUE(T.isScalar());
  EXPECT_TRUE(T.hasKnownShape());
  EXPECT_EQ(T.knownNumElements(), 1);

  T.Extents = {Ctx.makeConst(3), Ctx.makeConst(4)};
  EXPECT_FALSE(T.isScalar());
  EXPECT_EQ(T.knownNumElements(), 12);

  T.Extents = {Ctx.makeSym("n"), Ctx.makeConst(4)};
  EXPECT_FALSE(T.hasKnownShape());
  EXPECT_FALSE(T.isScalar());
}

TEST(VarTypeTest, BottomHasNoShape) {
  VarType T;
  EXPECT_TRUE(T.isBottom());
  EXPECT_FALSE(T.isScalar());
  EXPECT_FALSE(T.hasKnownShape());
}

TEST(VarTypeTest, Rendering) {
  SymExprContext Ctx;
  VarType T;
  T.IT = IntrinsicType::Complex;
  T.Extents = {Ctx.makeSym("n"), Ctx.makeConst(2)};
  std::string S = T.str();
  EXPECT_NE(S.find("complex"), std::string::npos);
  EXPECT_NE(S.find("n"), std::string::npos);
  EXPECT_NE(S.find("2"), std::string::npos);
}

} // namespace
