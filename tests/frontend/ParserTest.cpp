//===- ParserTest.cpp - Unit tests for the MATLAB-subset parser -----------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::unique_ptr<Program> parseOK(const std::string &Src) {
  Diagnostics Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(P, nullptr);
  return P;
}

ExprPtr parseExprOK(const std::string &Src) {
  Diagnostics Diags;
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  ExprPtr E = P.parseExpression();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(E, nullptr);
  return E;
}

TEST(Parser, ScriptBecomesMain) {
  auto P = parseOK("x = 1;\ny = x + 2;\n");
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Functions[0]->Name, "main");
  EXPECT_EQ(P->Functions[0]->Body.size(), 2u);
}

TEST(Parser, FunctionHeaderForms) {
  auto P = parseOK("function y = f(x)\ny = x;\n\nfunction [a, b] = g(u, v)\n"
                   "a = u; b = v;\n\nfunction h\n");
  ASSERT_EQ(P->Functions.size(), 3u);
  EXPECT_EQ(P->Functions[0]->Name, "f");
  EXPECT_EQ(P->Functions[0]->Outputs.size(), 1u);
  EXPECT_EQ(P->Functions[0]->Params.size(), 1u);
  EXPECT_EQ(P->Functions[1]->Name, "g");
  EXPECT_EQ(P->Functions[1]->Outputs.size(), 2u);
  EXPECT_EQ(P->Functions[1]->Params.size(), 2u);
  EXPECT_EQ(P->Functions[2]->Name, "h");
  EXPECT_TRUE(P->Functions[2]->Outputs.empty());
}

TEST(Parser, FunctionWithExplicitEnd) {
  auto P = parseOK("function y = f(x)\ny = x;\nend\n"
                   "function z = g(x)\nz = x;\nend\n");
  ASSERT_EQ(P->Functions.size(), 2u);
}

TEST(Parser, AssignDisplayFlag) {
  auto P = parseOK("a = 1;\nb = 2\n");
  auto *S0 = static_cast<AssignStmt *>(P->Functions[0]->Body[0].get());
  auto *S1 = static_cast<AssignStmt *>(P->Functions[0]->Body[1].get());
  EXPECT_FALSE(S0->Display);
  EXPECT_TRUE(S1->Display);
}

TEST(Parser, IndexedAssignment) {
  auto P = parseOK("a(2, 3) = 7;\n");
  auto *S = static_cast<AssignStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Target.Name, "a");
  EXPECT_EQ(S->Target.Indices.size(), 2u);
}

TEST(Parser, MultiAssign) {
  auto P = parseOK("[m, n] = size(a);\n");
  ASSERT_EQ(P->Functions[0]->Body.size(), 1u);
  auto *S = static_cast<MultiAssignStmt *>(P->Functions[0]->Body[0].get());
  ASSERT_EQ(S->Targets.size(), 2u);
  EXPECT_EQ(S->Targets[0].Name, "m");
  EXPECT_EQ(S->Targets[1].Name, "n");
  EXPECT_EQ(S->Call->kind(), ExprKind::CallOrIndex);
}

TEST(Parser, IfElseifElse) {
  auto P = parseOK("if x < 1\ny = 1;\nelseif x < 2\ny = 2;\nelse\ny = 3;\n"
                   "end\n");
  auto *S = static_cast<IfStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Branches.size(), 2u);
  EXPECT_EQ(S->ElseBody.size(), 1u);
}

TEST(Parser, WhileLoop) {
  auto P = parseOK("while k <= 10\nk = k + 1;\nend\n");
  auto *S = static_cast<WhileStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Body.size(), 1u);
}

TEST(Parser, ForLoop) {
  auto P = parseOK("for i = 1:10\ns = s + i;\nend\n");
  auto *S = static_cast<ForStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Var, "i");
  EXPECT_EQ(S->Range->kind(), ExprKind::Range);
}

TEST(Parser, BreakContinueReturn) {
  auto P = parseOK("while 1\nbreak;\ncontinue;\nreturn;\nend\n");
  auto *S = static_cast<WhileStmt *>(P->Functions[0]->Body[0].get());
  ASSERT_EQ(S->Body.size(), 3u);
  EXPECT_EQ(S->Body[0]->kind(), StmtKind::Break);
  EXPECT_EQ(S->Body[1]->kind(), StmtKind::Continue);
  EXPECT_EQ(S->Body[2]->kind(), StmtKind::Return);
}

TEST(Parser, PrecedenceRangeVsAdd) {
  // 1:n+1 parses as 1:(n+1).
  ExprPtr E = parseExprOK("1:n+1");
  ASSERT_EQ(E->kind(), ExprKind::Range);
  auto *R = static_cast<RangeExpr *>(E.get());
  EXPECT_EQ(R->Stop->kind(), ExprKind::Binary);
}

TEST(Parser, PrecedenceCompareVsRange) {
  // 1:n < 5 parses as (1:n) < 5.
  ExprPtr E = parseExprOK("1:n < 5");
  ASSERT_EQ(E->kind(), ExprKind::Binary);
  auto *B = static_cast<BinaryExpr *>(E.get());
  EXPECT_EQ(B->Op, BinaryOp::Lt);
  EXPECT_EQ(B->LHS->kind(), ExprKind::Range);
}

TEST(Parser, PrecedenceUnaryVsPower) {
  // -2^2 parses as -(2^2).
  ExprPtr E = parseExprOK("-2^2");
  ASSERT_EQ(E->kind(), ExprKind::Unary);
  auto *U = static_cast<UnaryExpr *>(E.get());
  EXPECT_EQ(U->Operand->kind(), ExprKind::Binary);
}

TEST(Parser, PowerAcceptsSignedExponent) {
  ExprPtr E = parseExprOK("2^-3");
  ASSERT_EQ(E->kind(), ExprKind::Binary);
  auto *B = static_cast<BinaryExpr *>(E.get());
  EXPECT_EQ(B->Op, BinaryOp::MatPow);
  EXPECT_EQ(B->RHS->kind(), ExprKind::Unary);
}

TEST(Parser, PowerLeftAssociative) {
  // 2^3^2 parses as (2^3)^2.
  ExprPtr E = parseExprOK("2^3^2");
  auto *B = static_cast<BinaryExpr *>(E.get());
  EXPECT_EQ(B->LHS->kind(), ExprKind::Binary);
  EXPECT_EQ(B->RHS->kind(), ExprKind::Number);
}

TEST(Parser, ShortCircuitPrecedence) {
  // a || b && c parses as a || (b && c).
  ExprPtr E = parseExprOK("a || b && c");
  auto *B = static_cast<BinaryExpr *>(E.get());
  EXPECT_EQ(B->Op, BinaryOp::OrOr);
  EXPECT_EQ(B->RHS->kind(), ExprKind::Binary);
  EXPECT_EQ(static_cast<BinaryExpr *>(B->RHS.get())->Op, BinaryOp::AndAnd);
}

TEST(Parser, TransposeBindsTightly) {
  // a' * b: transpose applies to a only.
  ExprPtr E = parseExprOK("a' * b");
  auto *B = static_cast<BinaryExpr *>(E.get());
  EXPECT_EQ(B->Op, BinaryOp::MatMul);
  EXPECT_EQ(B->LHS->kind(), ExprKind::Transpose);
}

TEST(Parser, IndexWithColonAndEnd) {
  ExprPtr E = parseExprOK("a(:, end)");
  ASSERT_EQ(E->kind(), ExprKind::CallOrIndex);
  auto *CI = static_cast<CallOrIndexExpr *>(E.get());
  ASSERT_EQ(CI->Args.size(), 2u);
  EXPECT_EQ(CI->Args[0]->kind(), ExprKind::ColonAll);
  EXPECT_EQ(CI->Args[1]->kind(), ExprKind::EndIndex);
}

TEST(Parser, EndArithmeticInIndex) {
  ExprPtr E = parseExprOK("a(end - 1)");
  auto *CI = static_cast<CallOrIndexExpr *>(E.get());
  ASSERT_EQ(CI->Args.size(), 1u);
  EXPECT_EQ(CI->Args[0]->kind(), ExprKind::Binary);
}

TEST(Parser, EndOutsideIndexIsError) {
  Diagnostics Diags;
  auto P = parseProgram("x = end + 1;\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(P, nullptr);
}

TEST(Parser, MatrixLiteralRows) {
  ExprPtr E = parseExprOK("[1, 2; 3, 4]");
  auto *M = static_cast<MatrixExpr *>(E.get());
  ASSERT_EQ(M->Rows.size(), 2u);
  EXPECT_EQ(M->Rows[0].size(), 2u);
  EXPECT_EQ(M->Rows[1].size(), 2u);
}

TEST(Parser, EmptyMatrix) {
  ExprPtr E = parseExprOK("[]");
  auto *M = static_cast<MatrixExpr *>(E.get());
  EXPECT_TRUE(M->Rows.empty());
}

TEST(Parser, NestedCalls) {
  ExprPtr E = parseExprOK("max(abs(x), eps)");
  auto *CI = static_cast<CallOrIndexExpr *>(E.get());
  EXPECT_EQ(CI->Name, "max");
  ASSERT_EQ(CI->Args.size(), 2u);
  EXPECT_EQ(CI->Args[0]->kind(), ExprKind::CallOrIndex);
}

TEST(Parser, CommaSeparatedStatements) {
  auto P = parseOK("a = 1, b = 2; c = 3\n");
  EXPECT_EQ(P->Functions[0]->Body.size(), 3u);
}

TEST(Parser, SyntaxErrorIsReported) {
  Diagnostics Diags;
  auto P = parseProgram("x = (1 + ;\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(P, nullptr);
}

TEST(Parser, MissingEndIsReported) {
  Diagnostics Diags;
  auto P = parseProgram("while 1\nx = 2;\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(P, nullptr);
}

TEST(Parser, IfWithCommaSeparators) {
  auto P = parseOK("if x < 3, y = 1; end\n");
  auto *S = static_cast<IfStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Branches.size(), 1u);
  EXPECT_EQ(S->Branches[0].Body.size(), 1u);
}

TEST(Parser, SwitchCaseOtherwise) {
  auto P = parseOK("switch x\ncase 1\ny = 1;\ncase 2\ny = 2;\n"
                   "otherwise\ny = 0;\nend\nx = 1;\n");
  auto *S = static_cast<SwitchStmt *>(P->Functions[0]->Body[0].get());
  ASSERT_EQ(S->kind(), StmtKind::Switch);
  EXPECT_EQ(S->Cases.size(), 2u);
  EXPECT_EQ(S->Otherwise.size(), 1u);
}

TEST(Parser, SwitchWithoutOtherwise) {
  auto P = parseOK("switch x\ncase 'a'\ndisp(1);\nend\nx = 1;\n");
  auto *S = static_cast<SwitchStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Cases.size(), 1u);
  EXPECT_TRUE(S->Otherwise.empty());
}

TEST(Parser, DispCallStatement) {
  auto P = parseOK("disp(x);\n");
  auto *S = static_cast<ExprStmt *>(P->Functions[0]->Body[0].get());
  EXPECT_EQ(S->Value->kind(), ExprKind::CallOrIndex);
}

} // namespace
