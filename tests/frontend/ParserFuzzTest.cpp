//===- ParserFuzzTest.cpp - Frontend robustness fuzzing -------------------===//
//
// The lexer and parser must never crash, hang, or accept-and-corrupt on
// arbitrary input: random token soups and mutated fragments of valid
// programs must either parse cleanly or produce diagnostics.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace matcoal;

namespace {

const char *Fragments[] = {
    "function", "if",    "else",  "elseif", "end",   "while", "for",
    "break",    "continue", "return", "switch", "case", "otherwise",
    "x",        "y",     "foo",   "= ",     "==",    "~=",    "<=",
    ">=",       "&&",    "||",    "&",      "|",     "~",     "+",
    "-",        "*",     "/",     "\\",     "^",     ".*",    "./",
    ".^",       ".'",    "'str'", "'",      "(",     ")",     "[",
    "]",        ",",     ";",     ":",      "1",     "2.5",   "1e9",
    "3i",       "...",   "\n",    " ",      "%c\n",  "@",     "#",
};

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 Rng(GetParam() * 69069u + 5);
  std::uniform_int_distribution<size_t> Pick(
      0, sizeof(Fragments) / sizeof(Fragments[0]) - 1);
  std::uniform_int_distribution<int> Len(1, 120);
  std::string Src;
  int N = Len(Rng);
  for (int I = 0; I < N; ++I) {
    Src += Fragments[Pick(Rng)];
    Src += ' ';
  }
  Diagnostics Diags;
  auto P = parseProgram(Src, Diags);
  // Either a program or diagnostics -- never both empty, never a crash.
  if (!P) {
    EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

TEST_P(ParserFuzzTest, MutatedProgramNeverCrashes) {
  std::string Base = "function y = f(x)\n"
                     "if x > 0\ny = x * 2;\nelse\ny = -x;\nend\n"
                     "for i = 1:10\ny = y + i;\nend\n";
  std::mt19937 Rng(GetParam() * 2654435761u + 99);
  std::string Src = Base;
  // Apply a few random byte mutations.
  std::uniform_int_distribution<size_t> Pos(0, Src.size() - 1);
  std::uniform_int_distribution<int> Byte(32, 126);
  for (int I = 0; I < 5; ++I)
    Src[Pos(Rng)] = static_cast<char>(Byte(Rng));
  Diagnostics Diags;
  auto P = parseProgram(Src, Diags);
  if (!P) {
    EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  std::mt19937 Rng(GetParam() * 40503u + 7);
  std::uniform_int_distribution<int> Len(0, 200);
  std::uniform_int_distribution<int> Byte(1, 255);
  std::string Src;
  int N = Len(Rng);
  for (int I = 0; I < N; ++I)
    Src += static_cast<char>(Byte(Rng));
  Diagnostics Diags;
  auto P = parseProgram(Src, Diags);
  if (!P) {
    EXPECT_TRUE(Diags.hasErrors() || Src.empty()) << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0u, 30u));

} // namespace
