//===- LexerTest.cpp - Unit tests for the MATLAB-subset lexer -------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::vector<Token> lex(const std::string &Src, Diagnostics &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Src) {
  Diagnostics Diags;
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Src, Diags))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInput) {
  Diagnostics Diags;
  auto Toks = lex("", Diags);
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Eof);
}

TEST(Lexer, Numbers) {
  Diagnostics Diags;
  auto Toks = lex("42 3.14 1e-3 2.5e2 .5", Diags);
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_DOUBLE_EQ(Toks[0].NumValue, 42);
  EXPECT_DOUBLE_EQ(Toks[1].NumValue, 3.14);
  EXPECT_DOUBLE_EQ(Toks[2].NumValue, 1e-3);
  EXPECT_DOUBLE_EQ(Toks[3].NumValue, 250);
  EXPECT_DOUBLE_EQ(Toks[4].NumValue, 0.5);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, ImaginaryLiterals) {
  Diagnostics Diags;
  auto Toks = lex("2i 3.5j", Diags);
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_TRUE(Toks[0].IsImaginary);
  EXPECT_DOUBLE_EQ(Toks[0].NumValue, 2);
  EXPECT_TRUE(Toks[1].IsImaginary);
  EXPECT_DOUBLE_EQ(Toks[1].NumValue, 3.5);
}

TEST(Lexer, Keywords) {
  auto K = kinds("function if elseif else end while for break continue "
                 "return");
  std::vector<TokenKind> Expected = {
      TokenKind::KwFunction, TokenKind::KwIf,    TokenKind::KwElseif,
      TokenKind::KwElse,     TokenKind::KwEnd,   TokenKind::KwWhile,
      TokenKind::KwFor,      TokenKind::KwBreak, TokenKind::KwContinue,
      TokenKind::KwReturn,   TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, OperatorsTwoChar) {
  auto K = kinds("== ~= <= >= && || .* ./ .^ .'");
  std::vector<TokenKind> Expected = {
      TokenKind::EqEq,     TokenKind::NotEq,    TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::AmpAmp,  TokenKind::PipePipe,
      TokenKind::DotStar,  TokenKind::DotSlash, TokenKind::DotCaret,
      TokenKind::DotApos,  TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, CommentsAreSkipped) {
  auto K = kinds("x = 1 % trailing comment\ny = 2");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Assign, TokenKind::Number,
      TokenKind::Newline,    TokenKind::Identifier, TokenKind::Assign,
      TokenKind::Number,     TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, Continuation) {
  auto K = kinds("x = 1 + ...\n    2");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Assign, TokenKind::Number,
      TokenKind::Plus,       TokenKind::Number, TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, QuoteAfterValueIsTranspose) {
  auto K = kinds("a'");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Apos,
                                     TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, QuoteAfterOperatorIsString) {
  Diagnostics Diags;
  auto Toks = lex("x = 'hello'", Diags);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[2].Kind, TokenKind::String);
  EXPECT_EQ(Toks[2].Text, "hello");
}

TEST(Lexer, StringWithEscapedQuote) {
  Diagnostics Diags;
  auto Toks = lex("s = 'it''s'", Diags);
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[2].Text, "it's");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedStringReportsError) {
  Diagnostics Diags;
  lex("s = 'oops", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, TransposeAfterParenAndBracket) {
  auto K = kinds("(a)' [1]'");
  std::vector<TokenKind> Expected = {
      TokenKind::LParen, TokenKind::Identifier, TokenKind::RParen,
      TokenKind::Apos,   TokenKind::LBracket,   TokenKind::Number,
      TokenKind::RBracket, TokenKind::Apos,     TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, MatrixSpaceSeparatesElements) {
  // "[1 2]" -> two elements.
  auto K = kinds("[1 2]");
  std::vector<TokenKind> Expected = {
      TokenKind::LBracket, TokenKind::Number, TokenKind::MatrixSep,
      TokenKind::Number,   TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, MatrixUnarySignAfterSpaceSeparates) {
  // "[1 -2]" -> two elements (1 and -2).
  auto K = kinds("[1 -2]");
  std::vector<TokenKind> Expected = {
      TokenKind::LBracket, TokenKind::Number, TokenKind::MatrixSep,
      TokenKind::Minus,    TokenKind::Number, TokenKind::RBracket,
      TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, MatrixSpacedBinaryMinusDoesNotSeparate) {
  // "[1 - 2]" -> one element (1-2).
  auto K = kinds("[1 - 2]");
  std::vector<TokenKind> Expected = {
      TokenKind::LBracket, TokenKind::Number, TokenKind::Minus,
      TokenKind::Number,   TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, NoMatrixSepInsideNestedParens) {
  // Whitespace inside f(...) within brackets must not separate.
  auto K = kinds("[f(1, 2) 3]");
  std::vector<TokenKind> Expected = {
      TokenKind::LBracket, TokenKind::Identifier, TokenKind::LParen,
      TokenKind::Number,   TokenKind::Comma,      TokenKind::Number,
      TokenKind::RParen,   TokenKind::MatrixSep,  TokenKind::Number,
      TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, NewlineInsideBracketsIsRowSeparator) {
  auto K = kinds("[1\n2]");
  std::vector<TokenKind> Expected = {
      TokenKind::LBracket, TokenKind::Number, TokenKind::Semi,
      TokenKind::Number,   TokenKind::RBracket, TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, CollapsesNewlineRuns) {
  auto K = kinds("a\n\n\nb");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Newline, TokenKind::Identifier,
      TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  Diagnostics Diags;
  auto Toks = lex("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
}

TEST(Lexer, LocationTracking) {
  Diagnostics Diags;
  auto Toks = lex("a\nbb", Diags);
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[2].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Col, 1u);
}

} // namespace
