//===- RuntimeProfilerTest.cpp - Runtime storage observability tests ------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// Covers the runtime half of the observability story: event-kind
// derivation and high-water accounting in the recorder, the event-stream
// JSON round trip, op-clock determinism of profiled VM runs, the
// plan-vs-actual drift report (unit verdicts plus the full 11-program
// suite), the memory counter track in the Chrome trace, the pinned
// rt.pool.held_bytes_hwm counter, and trap provenance (source line + op
// in the error message).
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "driver/Compiler.h"
#include "observe/Observe.h"
#include "observe/RuntimeProfiler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace matcoal;

namespace {

std::unique_ptr<CompiledProgram> compileOK(const std::string &Source,
                                           Observer *Obs = nullptr) {
  CompileOptions Opts;
  Opts.Obs = Obs;
  Diagnostics Diags;
  auto P = compileSource(Source, Diags, Opts);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

const char *kVectorSrc = "function main()\n"
                         "  n = round(rand() * 8) + 2;\n"
                         "  a = rand(n, n);\n"
                         "  b = a .* 2;\n"
                         "  disp(sum(b(:, 1)));\n"
                         "end\n";

const char *kGrowthSrc = "v = zeros(1, 4);\n"
                         "for k = 1:64\n"
                         "  v(k) = k;\n"
                         "end\n"
                         "disp(sum(v));\n";

//===----------------------------------------------------------------------===//
// Recorder unit tests
//===----------------------------------------------------------------------===//

TEST(RuntimeProfiler, DerivesAllocResizeAndSkipsUnchangedTouches) {
  RuntimeProfiler P;
  P.size(1, "f", 0, "g0", 80);
  P.size(2, "f", 0, "g0", 80); // unchanged: no event, no point
  P.size(5, "f", 0, "g0", 160);
  ASSERT_EQ(P.events().size(), 2u);
  EXPECT_EQ(P.events()[0].Kind, ProfEventKind::Alloc);
  EXPECT_EQ(P.events()[1].Kind, ProfEventKind::Resize);
  EXPECT_EQ(P.events()[1].Delta, 80);

  const MemTimeline *T = P.timelineFor("f", 0, "g0");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Points.size(), 2u);
  EXPECT_EQ(T->HwmBytes, 160);
  EXPECT_EQ(T->Allocs, 1u);
  EXPECT_EQ(T->Resizes, 1u);
  EXPECT_EQ(T->FirstClock, 1u);
  EXPECT_EQ(T->LastClock, 5u);
}

TEST(RuntimeProfiler, FreeStartsANewLifetimeAndTotalHwmIsSimultaneous) {
  RuntimeProfiler P;
  P.size(1, "f", 0, "g0", 100);
  P.size(2, "f", 1, "g1", 50);
  P.event(ProfEventKind::Free, 3, "f", 0, "g0");
  P.size(4, "f", 0, "g0", 10); // re-materialize: Alloc, not Resize
  // Peak was 150 (both live), not 160 (sum of per-slot peaks over time).
  EXPECT_EQ(P.totalHwmBytes(), 150);
  const MemTimeline *T = P.timelineFor("f", 0, "g0");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Allocs, 2u);
  EXPECT_EQ(T->Resizes, 0u);
  EXPECT_EQ(T->Frees, 1u);
}

TEST(RuntimeProfiler, InPlaceStealAndPoolReuseBumpCounters) {
  RuntimeProfiler P;
  P.size(1, "f", 0, "g0", 8);
  P.event(ProfEventKind::InPlace, 2, "f", 0, "g0");
  P.event(ProfEventKind::InPlace, 3, "f", 0, "g0");
  P.event(ProfEventKind::Steal, 4, "f", 0, "g0");
  P.event(ProfEventKind::PoolReuse, 5, "", -1, "pool");
  const MemTimeline *T = P.timelineFor("f", 0, "g0");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->InPlaceHits, 2u);
  EXPECT_EQ(T->Steals, 1u);
  EXPECT_EQ(P.poolReuses(), 1u);
  EXPECT_FALSE(P.trapped());
  P.event(ProfEventKind::Trap, 6, "f", -1, "trap", 0, "boom");
  EXPECT_TRUE(P.trapped());
}

TEST(RuntimeProfiler, StoredEventCapIsNeverSilent) {
  RuntimeProfiler P;
  P.setMaxStoredEvents(2);
  P.size(1, "f", 0, "g0", 8);
  P.size(2, "f", 0, "g0", 16);
  P.size(3, "f", 0, "g0", 32);
  P.size(4, "f", 0, "g0", 64);
  EXPECT_EQ(P.events().size(), 2u);
  EXPECT_EQ(P.droppedEvents(), 2u);
  // Aggregates stay exact past the cap; the envelope admits the drop.
  const MemTimeline *T = P.timelineFor("f", 0, "g0");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->HwmBytes, 64);
  EXPECT_EQ(T->Resizes, 3u);
  EXPECT_NE(P.eventsJson("vm").find("\"events_dropped\": 2"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Serialization round trip
//===----------------------------------------------------------------------===//

TEST(RuntimeProfiler, EventsJsonRoundTripsThroughLoad) {
  RuntimeProfiler A;
  A.size(1, "main", 0, "g0", 80);
  A.size(4, "main", 0, "g0", 160);
  A.size(5, "sub", 1, "g1", 24);
  A.event(ProfEventKind::InPlace, 6, "sub", 1, "g1");
  A.event(ProfEventKind::Free, 9, "main", 0, "g0");
  A.event(ProfEventKind::PoolReuse, 10, "", -1, "pool");

  RuntimeProfiler B;
  ASSERT_TRUE(B.loadEventsJson(A.eventsJson("vm")));
  EXPECT_EQ(B.eventsJson("vm"), A.eventsJson("vm"));
  EXPECT_EQ(B.totalHwmBytes(), A.totalHwmBytes());
  EXPECT_EQ(B.poolReuses(), 1u);
  const MemTimeline *T = B.timelineFor("main", 0, "g0");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->HwmBytes, 160);
  EXPECT_EQ(T->Frees, 1u);

  // profileJson carries the same events array; loading it replays too.
  RuntimeProfiler C;
  ASSERT_TRUE(C.loadEventsJson(A.profileJson("prog", "vm")));
  EXPECT_EQ(C.totalHwmBytes(), A.totalHwmBytes());

  RuntimeProfiler D;
  EXPECT_FALSE(D.loadEventsJson("{\"no\": \"stream\"}"));
}

TEST(RuntimeProfiler, TraceJsonCarriesMemoryCounterTrack) {
  RuntimeProfiler P;
  P.size(1, "main", 0, "g0", 80);
  P.size(7, "main", 0, "g0", 8);
  std::string J = P.traceJson();
  EXPECT_NE(J.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"mem.main.g0\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"mem.total\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\": 7"), std::string::npos);

  // With an observer the compile-time spans ride along on their own pid.
  Observer Obs;
  compileOK("disp(1);\n", &Obs);
  std::string WithSpans = P.traceJson(&Obs);
  EXPECT_NE(WithSpans.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(WithSpans.find("\"ph\": \"C\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Drift report verdicts (unit level, synthetic plans)
//===----------------------------------------------------------------------===//

TEST(DriftReport, ClassifiesEveryVerdict) {
  RuntimeProfiler P;
  P.size(1, "main", 0, "g0", 8);     // matches its 8 B stack slot
  P.size(2, "main", 1, "g1", 80);    // stack slot planned 1024 B: over-prov.
  P.size(3, "main", 2, "g2", 800);   // heap, resized
  P.size(4, "main", 2, "g2", 1600);
  P.size(5, "main", 3, "g3", 640);   // heap, small, never resized
  // group 4 never materializes.

  std::vector<PlannedGroupInfo> Plan(5);
  for (int G = 0; G < 5; ++G) {
    Plan[G].Function = "main";
    Plan[G].Group = G;
  }
  Plan[0].Stack = true;
  Plan[0].PlannedBytes = 8;
  Plan[1].Stack = true;
  Plan[1].PlannedBytes = 1024;
  Plan[2].SizeExpr = "8*n*n";
  Plan[3].SizeExpr = "8*m";
  Plan[4].Stack = true;
  Plan[4].PlannedBytes = 16;

  Observer Obs;
  std::string R = P.driftReport(Plan, /*StackPromoteCapBytes=*/256 * 1024,
                                &Obs);
  EXPECT_NE(R.find("main/g0 stack 8 B: observed hwm 8 B"), std::string::npos);
  EXPECT_NE(R.find("over-provisioned (planned 1024 B)"), std::string::npos);
  EXPECT_NE(R.find("resized at run time"), std::string::npos);
  EXPECT_NE(R.find("stack-promotable"), std::string::npos);
  EXPECT_NE(R.find("never materialized"), std::string::npos);
  EXPECT_NE(R.find("drift: 4 of 5 planned group(s)"), std::string::npos);
  // One PlanDrift remark per diverging group, none for the clean one.
  EXPECT_EQ(Obs.countRemarks(RemarkKind::PlanDrift), 4u);
}

//===----------------------------------------------------------------------===//
// Profiled VM runs
//===----------------------------------------------------------------------===//

TEST(ProfiledRun, VMFeedsTimelinesAndReportsPoolHwmCounter) {
  Observer Obs;
  auto P = compileOK(kVectorSrc, &Obs);
  ASSERT_TRUE(P);
  RuntimeProfiler Prof;
  P->Prof = &Prof;
  ExecResult R = P->runStatic();
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_FALSE(Prof.events().empty());
  EXPECT_GT(Prof.totalHwmBytes(), 0);
  EXPECT_FALSE(Prof.timelines().empty());
  // The run reported the pool high-water counter into the observer.
  EXPECT_TRUE(Obs.Stats.has("rt.pool.held_bytes_hwm"));
  EXPECT_EQ(Obs.Stats.get("rt.pool.held_bytes_hwm"), R.PoolHeldHwmBytes);
}

TEST(ProfiledRun, OpClockMakesTwoRunsByteIdentical) {
  auto P = compileOK(kVectorSrc);
  ASSERT_TRUE(P);
  RuntimeProfiler A, B;
  P->Prof = &A;
  ASSERT_TRUE(P->runStatic().OK);
  P->Prof = &B;
  ASSERT_TRUE(P->runStatic().OK);
  EXPECT_EQ(A.eventsJson("vm"), B.eventsJson("vm"));
  EXPECT_EQ(A.profileJson("p", "vm"), B.profileJson("p", "vm"));
}

TEST(ProfiledRun, GrowthShowsUpAsResizes) {
  auto P = compileOK(kGrowthSrc);
  ASSERT_TRUE(P);
  RuntimeProfiler Prof;
  P->Prof = &Prof;
  ASSERT_TRUE(P->runStatic().OK);
  unsigned Resizes = 0;
  for (const MemTimeline *T : Prof.timelines())
    Resizes += T->Resizes;
  EXPECT_GT(Resizes, 0u) << Prof.timelineText();
}

TEST(ProfiledRun, InterpreterFeedsTheSameRecorder) {
  auto P = compileOK(kVectorSrc);
  ASSERT_TRUE(P);
  RuntimeProfiler Prof;
  P->Prof = &Prof;
  InterpResult R = P->runInterp();
  ASSERT_TRUE(R.OK) << R.Error;
  EXPECT_FALSE(Prof.events().empty());
  // Interpreter storage is unplanned: variable-named slots, group -1.
  bool SawNamed = false;
  for (const MemTimeline *T : Prof.timelines())
    if (T->Group < 0 && !T->Slot.empty() && T->Slot[0] != 'g')
      SawNamed = true;
  EXPECT_TRUE(SawNamed);
}

//===----------------------------------------------------------------------===//
// Trap provenance
//===----------------------------------------------------------------------===//

TEST(TrapProvenance, RuntimeErrorsCarrySourceLineAndOp) {
  const char *Src = "function main()\n"
                    "  n = round(rand() * 3) + 2;\n"
                    "  a = rand(n, n);\n"
                    "  disp(a(n + 10, 1));\n"
                    "end\n";
  auto P = compileOK(Src);
  ASSERT_TRUE(P);
  RuntimeProfiler Prof;
  P->Prof = &Prof;
  ExecResult R = P->runStatic();
  ASSERT_FALSE(R.OK);
  EXPECT_TRUE(R.TrapLoc.isValid()) << R.Error;
  EXPECT_EQ(R.Error.rfind("line ", 0), 0u) << R.Error;
  EXPECT_TRUE(Prof.trapped());
  bool SawTrapEvent = false;
  for (const ProfEvent &E : Prof.events())
    if (E.Kind == ProfEventKind::Trap) {
      SawTrapEvent = true;
      EXPECT_FALSE(E.Note.empty());
    }
  EXPECT_TRUE(SawTrapEvent);
}

//===----------------------------------------------------------------------===//
// The full suite: drift report exists for every benchmark program
//===----------------------------------------------------------------------===//

TEST(DriftReport, CoversEveryBenchmarkProgram) {
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    auto P = compileOK(Prog.Source);
    ASSERT_TRUE(P) << Prog.Name;
    RuntimeProfiler Prof;
    P->Prof = &Prof;
    ExecResult R = P->runStatic();
    ASSERT_TRUE(R.OK) << Prog.Name << ": " << R.Error;
    ASSERT_FALSE(plannedGroupInfo(*P).empty()) << Prog.Name;
    std::string Report = driftReportFor(*P, Prof);
    EXPECT_NE(Report.find("plan-vs-actual drift report"), std::string::npos)
        << Prog.Name;
    EXPECT_NE(Report.find("planned group(s)"), std::string::npos)
        << Prog.Name;
  }
}

} // namespace
