//===- ObserveTest.cpp - Telemetry, remarks, and dump-hook tests ----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// Covers the observability substrate end to end: counter determinism and
// the checked-in schema, the every-GCTD-decision-remarked guarantee over
// the 11-program suite, golden files for a range-justified promotion and
// a discharged operator-semantics edge, the --print-after=ssa dump, and
// trace serialization.
//
// Golden maintenance: run with MATCOAL_UPDATE_GOLDENS=1 to rewrite the
// files under tests/observe/golden from current output, then review the
// diff like any other code change.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "observe/Observe.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace matcoal;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(OBSERVE_GOLDEN_DIR) + "/" + Name;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

bool updateGoldens() { return std::getenv("MATCOAL_UPDATE_GOLDENS"); }

/// Compares \p Actual against the golden file (or rewrites it under
/// MATCOAL_UPDATE_GOLDENS=1).
void expectGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = goldenPath(Name);
  if (updateGoldens()) {
    std::ofstream Out(Path);
    Out << Actual;
    return;
  }
  EXPECT_EQ(readFile(Path), Actual) << "golden mismatch: " << Path
                                    << " (MATCOAL_UPDATE_GOLDENS=1 to "
                                       "regenerate)";
}

/// Compiles \p Source with an observer attached and the C emitter run, so
/// every counter the pipeline owns is populated. Asserts a clean compile.
std::unique_ptr<CompiledProgram> compileObserved(const std::string &Source,
                                                 Observer &Obs) {
  CompileOptions Opts;
  Opts.Obs = &Obs;
  Diagnostics Diags;
  auto P = compileSource(Source, Diags, Opts);
  EXPECT_TRUE(P) << Diags.str();
  if (P && P->M && P->TI)
    (void)emitModuleC(P->module(), P->GCTDPlans, P->types(), P->ranges(),
                      &Obs);
  return P;
}

const char *kPromoteSrc = "function main()\n"
                          "  n = round(rand() * 8) + 2;\n"
                          "  a = rand(n, n);\n"
                          "  disp(sum(a(:, 1)));\n"
                          "end\n";

const char *kDischargeSrc = "function main()\n"
                            "  n = round(rand() * 0) + 1;\n"
                            "  b = rand(n, n);\n"
                            "  a = rand(3, 3);\n"
                            "  c = a * b;\n"
                            "  disp(sum(c(:, 1)));\n"
                            "end\n";

const char *kSmallSrc = "function main()\n"
                        "  x = 1;\n"
                        "  if rand() < 0.5\n"
                        "    x = 2;\n"
                        "  end\n"
                        "  disp(x);\n"
                        "end\n";

//===----------------------------------------------------------------------===//
// Substrate unit tests
//===----------------------------------------------------------------------===//

TEST(StatRegistry, AddsSeedsAndIteratesSorted) {
  StatRegistry S;
  S.add("b.two", 2);
  S.add("a.one");
  S.add("a.one");
  S.add("c.zero", 0);
  EXPECT_EQ(S.get("a.one"), 2);
  EXPECT_EQ(S.get("b.two"), 2);
  EXPECT_EQ(S.get("c.zero"), 0);
  EXPECT_TRUE(S.has("c.zero"));
  EXPECT_FALSE(S.has("missing"));
  EXPECT_EQ(S.get("missing"), 0);
  std::vector<std::string> Names;
  for (const auto &[N, V] : S.all())
    Names.push_back(N);
  EXPECT_EQ(Names, (std::vector<std::string>{"a.one", "b.two", "c.zero"}));
}

TEST(StatRegistry, MergeFoldsCounters) {
  StatRegistry A, B;
  A.add("x", 3);
  B.add("x", 4);
  B.add("y", 1);
  A.merge(B);
  EXPECT_EQ(A.get("x"), 7);
  EXPECT_EQ(A.get("y"), 1);
}

TEST(Remark, StrAndArgAccess) {
  Remark R;
  R.Pass = "interference";
  R.Kind = RemarkKind::EdgeAdded;
  R.Function = "main";
  R.Message = "edge a -- b";
  R.Args = {{"result", "a"}, {"operand", "b"}};
  R.Loc = SourceLoc{3, 7};
  EXPECT_EQ(R.str(), "3:7: interference: edge-added: edge a -- b [main]");
  ASSERT_NE(R.arg("operand"), nullptr);
  EXPECT_EQ(*R.arg("operand"), "b");
  EXPECT_EQ(R.arg("absent"), nullptr);
}

TEST(PassTimer, RecordsTraceEventsAndWorksUnobserved) {
  Observer Obs;
  {
    PassTimer T = Obs.time("pass.x");
    (void)T;
  }
  ASSERT_EQ(Obs.Trace.size(), 1u);
  EXPECT_EQ(Obs.Trace[0].Name, "pass.x");
  PassTimer Free(nullptr, "unobserved");
  Free.stop();
  EXPECT_GE(Free.seconds(), 0.0);
}

TEST(Observer, DumpHooksOnlyFireWhenRequested) {
  Observer Quiet;
  compileObserved(kSmallSrc, Quiet);
  EXPECT_TRUE(Quiet.IRDumps.empty());
  EXPECT_FALSE(Quiet.wantsAnyDump());

  Observer Dumping;
  Dumping.requestDump("ssa");
  EXPECT_TRUE(Dumping.wantsDump("ssa"));
  EXPECT_FALSE(Dumping.wantsDump("lower"));
  compileObserved(kSmallSrc, Dumping);
  ASSERT_NE(Dumping.dumpOf("ssa"), nullptr);
  EXPECT_EQ(Dumping.dumpOf("lower"), nullptr);

  Observer All;
  All.requestDumpAll();
  compileObserved(kSmallSrc, All);
  EXPECT_NE(All.dumpOf("lower"), nullptr);
  EXPECT_NE(All.dumpOf("ssa"), nullptr);
  EXPECT_NE(All.dumpOf("cleanup"), nullptr);
  EXPECT_NE(All.dumpOf("invert"), nullptr);
}

//===----------------------------------------------------------------------===//
// Determinism and the counter schema
//===----------------------------------------------------------------------===//

TEST(ObserveStats, CountersDeterministicAcrossCompiles) {
  Observer A, B;
  compileObserved(kPromoteSrc, A);
  compileObserved(kPromoteSrc, B);
  EXPECT_EQ(A.Stats.all(), B.Stats.all());
  EXPECT_EQ(A.Remarks.size(), B.Remarks.size());
  for (size_t I = 0; I < A.Remarks.size() && I < B.Remarks.size(); ++I)
    EXPECT_EQ(A.Remarks[I].str(), B.Remarks[I].str());
}

TEST(ObserveStats, StatsJsonCounterBlockIsByteStable) {
  Observer A, B;
  compileObserved(kDischargeSrc, A);
  compileObserved(kDischargeSrc, B);
  auto Counters = [](const Observer &O) {
    std::string J = O.statsJson();
    size_t Lo = J.find("\"counters\"");
    size_t Hi = J.find("\"passes\"");
    return J.substr(Lo, Hi - Lo);
  };
  EXPECT_EQ(Counters(A), Counters(B));
}

TEST(ObserveStats, SchemaMatchesCheckedInFile) {
  // The union of counter names over the whole suite (with codegen run) is
  // the schema. Pinning it in a checked-in file means a counter cannot
  // silently vanish -- deleting one is a reviewed diff here and in CI.
  StatRegistry Union;
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    Observer Obs;
    compileObserved(Prog.Source, Obs);
    Union.merge(Obs.Stats);
  }
  std::string Actual;
  for (const auto &[Name, Value] : Union.all()) {
    (void)Value;
    Actual += Name + "\n";
  }
  std::string Path = goldenPath("../stats_schema.txt");
  if (updateGoldens()) {
    std::ofstream Out(Path);
    Out << Actual;
    return;
  }
  EXPECT_EQ(readFile(Path), Actual)
      << "counter schema drifted (MATCOAL_UPDATE_GOLDENS=1 regenerates "
         "tests/observe/stats_schema.txt)";
}

//===----------------------------------------------------------------------===//
// Every GCTD storage decision surfaces as a remark
//===----------------------------------------------------------------------===//

TEST(ObserveRemarks, EveryStorageDecisionRemarkedAcrossSuite) {
  for (const BenchmarkProgram &Prog : benchmarkSuite()) {
    Observer Obs;
    auto P = compileObserved(Prog.Source, Obs);
    ASSERT_TRUE(P) << Prog.Name;
    EXPECT_EQ(P->level(), DegradeLevel::Full) << Prog.Name;

    unsigned Groups = 0, Stack = 0, Heap = 0;
    for (const auto &F : P->module().Functions) {
      const StoragePlan &Plan = P->planOf(*F);
      Groups += static_cast<unsigned>(Plan.Groups.size());
      for (const StorageGroup &G : Plan.Groups)
        (G.K == StorageGroup::Kind::Stack ? Stack : Heap) += 1;
    }
    // One remark per group, split by binding kind exactly as planned.
    EXPECT_EQ(Obs.countRemarks(RemarkKind::GroupStack), Stack) << Prog.Name;
    EXPECT_EQ(Obs.countRemarks(RemarkKind::GroupHeap), Heap) << Prog.Name;
    EXPECT_EQ(Obs.countRemarks(RemarkKind::GroupStack) +
                  Obs.countRemarks(RemarkKind::GroupHeap),
              Groups)
        << Prog.Name;
    // Counters agree with the remark stream.
    EXPECT_EQ(Obs.Stats.get("gctd.groups.stack"),
              static_cast<std::int64_t>(Stack))
        << Prog.Name;
    EXPECT_EQ(Obs.Stats.get("gctd.groups.heap"),
              static_cast<std::int64_t>(Heap))
        << Prog.Name;
    // Every heap binding names the size expression that forced it; every
    // stack binding carries its byte size and frame offset.
    for (const Remark *R : Obs.remarksFor("storage-plan")) {
      if (R->Kind == RemarkKind::GroupHeap) {
        ASSERT_NE(R->arg("size"), nullptr) << Prog.Name;
      } else if (R->Kind == RemarkKind::GroupStack) {
        ASSERT_NE(R->arg("bytes"), nullptr) << Prog.Name;
        ASSERT_NE(R->arg("offset"), nullptr) << Prog.Name;
      }
    }
  }
}

TEST(ObserveRemarks, ColorAssignmentsCoverEveryParticipant) {
  Observer Obs;
  auto P = compileObserved(kDischargeSrc, Obs);
  ASSERT_TRUE(P);
  // Each participating variable's web gets exactly one color remark per
  // representative; the remark stream mentions at least one per color.
  EXPECT_GT(Obs.countRemarks(RemarkKind::ColorAssigned), 0u);
  EXPECT_GE(static_cast<std::int64_t>(
                Obs.countRemarks(RemarkKind::ColorAssigned)),
            Obs.Stats.get("gctd.colors"));
}

TEST(ObserveRemarks, DegradationLandsInTheStream) {
  Observer Obs;
  CompileOptions Opts;
  Opts.Obs = &Obs;
  Opts.InjectFault = CompileStage::GCTD;
  Diagnostics Diags;
  auto P = compileSource(kSmallSrc, Diags, Opts);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->level(), DegradeLevel::IdentityPlans);
  ASSERT_EQ(Obs.countRemarks(RemarkKind::Degraded), 1u);
  for (const Remark &R : Obs.Remarks)
    if (R.Kind == RemarkKind::Degraded) {
      ASSERT_NE(R.arg("stage"), nullptr);
      EXPECT_EQ(*R.arg("stage"), "gctd");
      ASSERT_NE(R.arg("level"), nullptr);
      EXPECT_EQ(*R.arg("level"), "identity-plans");
    }
}

//===----------------------------------------------------------------------===//
// Golden files
//===----------------------------------------------------------------------===//

TEST(ObserveGolden, RangeJustifiedPromotionRemark) {
  Observer Obs;
  compileObserved(kPromoteSrc, Obs);
  EXPECT_GT(Obs.countRemarks(RemarkKind::GroupPromoted), 0u);
  std::string Text;
  for (const Remark *R : Obs.remarksFor("storage-plan"))
    if (R->Kind == RemarkKind::GroupPromoted)
      Text += R->str() + "\n";
  expectGolden("promotion_remarks.txt", Text);
}

TEST(ObserveGolden, DischargedEdgeRemark) {
  Observer Obs;
  compileObserved(kDischargeSrc, Obs);
  EXPECT_EQ(Obs.Stats.get("gctd.edges.discharged"),
            static_cast<std::int64_t>(
                Obs.countRemarks(RemarkKind::EdgeDischarged)));
  EXPECT_GT(Obs.countRemarks(RemarkKind::EdgeDischarged), 0u);
  std::string Text;
  for (const Remark *R : Obs.remarksFor("interference"))
    if (R->Kind == RemarkKind::EdgeDischarged)
      Text += R->str() + "\n";
  expectGolden("discharged_edge_remarks.txt", Text);
}

TEST(ObserveGolden, PrintAfterSSA) {
  Observer Obs;
  Obs.requestDump("ssa");
  compileObserved(kSmallSrc, Obs);
  const std::string *Dump = Obs.dumpOf("ssa");
  ASSERT_NE(Dump, nullptr);
  expectGolden("print_after_ssa.txt", *Dump);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(ObserveSerialize, TraceJsonIsChromeTraceShaped) {
  Observer Obs;
  compileObserved(kSmallSrc, Obs);
  std::string J = Obs.traceJson();
  ASSERT_FALSE(Obs.Trace.empty());
  EXPECT_EQ(J.front(), '[');
  EXPECT_EQ(J[J.size() - 2], ']'); // Trailing newline after the array.
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"parse\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\":"), std::string::npos);
  EXPECT_NE(J.find("\"dur\":"), std::string::npos);
}

TEST(ObserveSerialize, StatsJsonCarriesCountersPassesAndConfig) {
  Observer Obs;
  compileObserved(kSmallSrc, Obs);
  std::string J = Obs.statsJson();
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"passes\""), std::string::npos);
  EXPECT_NE(J.find("\"config\""), std::string::npos);
  EXPECT_NE(J.find("\"ir.functions\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"typeinf\""), std::string::npos);
  // The config block is the same one benchmarks embed.
  EXPECT_NE(J.find("\"pointer_bits\""), std::string::npos);
  EXPECT_NE(hardwareConfigJson().find("\"platform\""), std::string::npos);
}

TEST(ObserveSerialize, RemarksTextFiltersByPass) {
  Observer Obs;
  compileObserved(kDischargeSrc, Obs);
  std::string All = Obs.remarksText();
  std::string Gctd = Obs.remarksText("storage-plan");
  EXPECT_NE(All.find("interference"), std::string::npos);
  EXPECT_NE(Gctd.find("storage-plan"), std::string::npos);
  EXPECT_EQ(Gctd.find("edge-added"), std::string::npos);
  EXPECT_EQ(Gctd.find("check-elided"), std::string::npos);
}

} // namespace
