//===- HistogramTest.cpp - LatencyHistogram unit tests --------------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// The log2-bucket histogram behind every latency family in the system:
// bucket boundaries (the exact power-of-two edges, including the
// degenerate 0 and overflow cases), quantile interpolation, merging, and
// the Prometheus text exposition's invariants (cumulative buckets,
// +Inf == count, ordered quantiles).
//
//===----------------------------------------------------------------------===//

#include "observe/Histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

using namespace matcoal;

namespace {

TEST(HistogramBuckets, BoundaryValuesLandOnTheRightSide) {
  // Bucket 0 is [0, 1); bucket i is [2^(i-1), 2^i). A value exactly on a
  // power of two belongs to the bucket whose LOWER edge it is.
  EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketOf(7), 3u);
  EXPECT_EQ(LatencyHistogram::bucketOf(8), 4u);
  for (unsigned I = 1; I + 1 < LatencyHistogram::kBuckets; ++I) {
    std::uint64_t Lo = LatencyHistogram::bucketLower(I);
    std::uint64_t Hi = LatencyHistogram::bucketUpper(I);
    EXPECT_EQ(LatencyHistogram::bucketOf(Lo), I) << "lower edge of " << I;
    EXPECT_EQ(LatencyHistogram::bucketOf(Hi - 1), I) << "last of " << I;
    EXPECT_EQ(LatencyHistogram::bucketOf(Hi), I + 1) << "upper edge of " << I;
  }
}

TEST(HistogramBuckets, HugeValuesClampToTheOverflowBucket) {
  const unsigned Last = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucketOf(~static_cast<std::uint64_t>(0)), Last);
  EXPECT_EQ(LatencyHistogram::bucketOf(LatencyHistogram::bucketLower(Last)),
            Last);
  EXPECT_EQ(LatencyHistogram::bucketUpper(Last), ~static_cast<std::uint64_t>(0));
  LatencyHistogram H;
  H.record(~static_cast<std::uint64_t>(0));
  EXPECT_EQ(H.bucketCount(Last), 1u);
  // The overflow bucket has no finite width: quantiles report its lower
  // edge rather than inventing an upper bound.
  EXPECT_EQ(H.quantile(0.99),
            static_cast<double>(LatencyHistogram::bucketLower(Last)));
}

TEST(HistogramQuantiles, EmptyHistogramReportsZero) {
  LatencyHistogram H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0.0);
  EXPECT_EQ(H.quantile(0.99), 0.0);
}

TEST(HistogramQuantiles, SingleSampleInterpolatesWithinItsBucket) {
  LatencyHistogram H;
  H.record(50); // Bucket [32, 64), the only occupied one.
  // Rank 1 of 1 -> the top of the containing bucket, at every quantile.
  EXPECT_EQ(H.quantile(0.0), 64.0);
  EXPECT_EQ(H.quantile(0.5), 64.0);
  EXPECT_EQ(H.quantile(1.0), 64.0);
}

TEST(HistogramQuantiles, UniformFillInterpolatesLinearly) {
  // 4 samples in [8, 16): ranks map to evenly spaced points in the bucket.
  LatencyHistogram H;
  for (std::uint64_t V : {8u, 9u, 10u, 11u})
    H.record(V);
  EXPECT_DOUBLE_EQ(H.quantile(0.25), 10.0); // 8 + (16-8) * 1/4
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 12.0);
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 16.0);
}

TEST(HistogramQuantiles, QuantilesAreMonotoneAcrossBuckets) {
  LatencyHistogram H;
  for (std::uint64_t V = 1; V <= 1000; ++V)
    H.record(V * 7);
  double P50 = H.quantile(0.5), P95 = H.quantile(0.95),
         P99 = H.quantile(0.99);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
  EXPECT_LE(P99, static_cast<double>(H.max()) * 2.0);
  EXPECT_GT(P50, 0.0);
  // Determinism: a histogram rebuilt from the same samples answers
  // bit-identically.
  LatencyHistogram H2;
  for (std::uint64_t V = 1; V <= 1000; ++V)
    H2.record(V * 7);
  EXPECT_EQ(H.quantile(0.5), P50);
  EXPECT_EQ(H2.quantile(0.95), P95);
  EXPECT_EQ(H2.quantile(0.99), P99);
}

TEST(HistogramMerge, MergeIsElementWiseAddition) {
  LatencyHistogram A, B, Both;
  for (std::uint64_t V : {3u, 100u, 9000u}) {
    A.record(V);
    Both.record(V);
  }
  for (std::uint64_t V : {5u, 70u, 1u << 20}) {
    B.record(V);
    Both.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Both.count());
  EXPECT_EQ(A.sum(), Both.sum());
  EXPECT_EQ(A.max(), Both.max());
  for (unsigned I = 0; I < LatencyHistogram::kBuckets; ++I)
    EXPECT_EQ(A.bucketCount(I), Both.bucketCount(I)) << "bucket " << I;
  EXPECT_EQ(A.quantile(0.5), Both.quantile(0.5));
  EXPECT_EQ(A.quantile(0.99), Both.quantile(0.99));
}

/// Pulls "<name> <value>" pairs out of an exposition block, skipping
/// comment lines.
std::vector<std::pair<std::string, double>> parseExposition(
    const std::string &Text) {
  std::vector<std::pair<std::string, double>> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::size_t Sp = Line.rfind(' ');
    EXPECT_NE(Sp, std::string::npos) << Line;
    Out.push_back({Line.substr(0, Sp), std::stod(Line.substr(Sp + 1))});
  }
  return Out;
}

TEST(HistogramExposition, BucketsAreCumulativeAndInfEqualsCount) {
  LatencyHistogram H;
  for (std::uint64_t V : {1u, 3u, 3u, 900u, 40000u})
    H.record(V);
  std::string Text = H.prometheusText("matcoal_test_us");
  EXPECT_NE(Text.find("# TYPE matcoal_test_us histogram"), std::string::npos);
  double Prev = 0, Inf = -1, Count = -1, Sum = -1;
  for (const auto &[Name, Value] : parseExposition(Text)) {
    if (Name.find("_bucket{le=\"+Inf\"}") != std::string::npos) {
      Inf = Value;
    } else if (Name.find("_bucket{") != std::string::npos) {
      EXPECT_GE(Value, Prev) << "buckets must be cumulative: " << Name;
      Prev = Value;
    } else if (Name == "matcoal_test_us_count") {
      Count = Value;
    } else if (Name == "matcoal_test_us_sum") {
      Sum = Value;
    }
  }
  EXPECT_EQ(Inf, 5.0);
  EXPECT_EQ(Count, 5.0);
  EXPECT_EQ(Sum, 40907.0);
  EXPECT_GE(Inf, Prev); // +Inf dominates every finite bucket.
}

TEST(HistogramExposition, QuantileLinesAreOrderedAndPresent) {
  LatencyHistogram H;
  for (std::uint64_t V = 1; V <= 300; ++V)
    H.record(V);
  std::string Text = H.prometheusText("matcoal_test_us");
  double P50 = -1, P95 = -1, P99 = -1;
  for (const auto &[Name, Value] : parseExposition(Text)) {
    if (Name == "matcoal_test_us{quantile=\"0.5\"}")
      P50 = Value;
    else if (Name == "matcoal_test_us{quantile=\"0.95\"}")
      P95 = Value;
    else if (Name == "matcoal_test_us{quantile=\"0.99\"}")
      P99 = Value;
  }
  ASSERT_GE(P50, 0.0);
  ASSERT_GE(P95, 0.0);
  ASSERT_GE(P99, 0.0);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
}

} // namespace
