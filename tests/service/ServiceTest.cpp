//===- ServiceTest.cpp - matcoald service-layer tests ---------------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// The service contract under test (see Service.h): per-request fault
// isolation onto the degradation ladder, admission-clocked deadlines,
// bounded-queue backpressure, and -- the big one -- the storm test:
// concurrent execution must be byte-identical to serial execution,
// because every piece of compiler state is per-session.
//
//===----------------------------------------------------------------------===//

#include "service/JobQueue.h"
#include "service/Json.h"
#include "service/Service.h"

#include "gtest/gtest.h"

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace matcoal;

namespace {

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

JsonValue parseOK(const std::string &Text) {
  std::string Err;
  std::optional<JsonValue> V = JsonValue::parse(Text, Err);
  EXPECT_TRUE(V.has_value()) << Err;
  return V ? *V : JsonValue::null();
}

TEST(Json, RoundTripsTheProtocolEnvelope) {
  JsonValue V = parseOK(
      R"({"id":"r1","source":"x = 1;\ndisp(x);","deadline_ms":250,)"
      R"("no_fuse":true,"nested":{"a":[1,2.5,null,false],"b":"A"}})");
  EXPECT_EQ(V.get("id").asString(), "r1");
  EXPECT_EQ(V.get("source").asString(), "x = 1;\ndisp(x);");
  EXPECT_EQ(V.get("deadline_ms").asInt(), 250);
  EXPECT_TRUE(V.get("no_fuse").asBool());
  EXPECT_EQ(V.get("nested").get("a").items().size(), 4u);
  EXPECT_EQ(V.get("nested").get("b").asString(), "A");

  // dump() is canonical enough to round-trip: parse(dump(x)) == dump-wise.
  std::string Dumped = V.dump();
  EXPECT_EQ(Dumped.find('\n'), std::string::npos)
      << "NDJSON lines must be newline-free";
  EXPECT_EQ(parseOK(Dumped).dump(), Dumped);
}

TEST(Json, EscapesEmbeddedSourceSafely) {
  JsonValue O = JsonValue::object();
  O.set("source", JsonValue::str("a = \"q\";\n\tdisp(a); % 100% \\ sure"));
  JsonValue Back = parseOK(O.dump());
  EXPECT_EQ(Back.get("source").asString(),
            "a = \"q\";\n\tdisp(a); % 100% \\ sure");
}

TEST(Json, RejectsMalformedInputWithPosition) {
  std::string Err;
  EXPECT_FALSE(JsonValue::parse("{\"a\":", Err).has_value());
  EXPECT_NE(Err.find("offset"), std::string::npos) << Err;
  EXPECT_FALSE(JsonValue::parse("{} trailing", Err).has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", Err).has_value());
  EXPECT_FALSE(JsonValue::parse("\"dangling \\u12", Err).has_value());
}

TEST(Json, MissingKeysReadAsTypedDefaults) {
  JsonValue V = parseOK("{}");
  EXPECT_TRUE(V.get("nope").isNull());
  EXPECT_EQ(V.get("nope").asInt(7), 7);
  EXPECT_EQ(V.get("nope").asString(), "");
  EXPECT_FALSE(V.get("nope").asBool());
}

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

TEST(JobQueue, TryPushRefusesAtCapacity) {
  JobQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3)) << "full queue must refuse, not block";
  int Out = 0;
  EXPECT_TRUE(Q.pop(Out));
  EXPECT_EQ(Out, 1);
  EXPECT_TRUE(Q.tryPush(3)) << "space freed by pop must be reusable";
}

TEST(JobQueue, CloseDrainsBeforeStoppingConsumers) {
  JobQueue<int> Q(8);
  ASSERT_TRUE(Q.tryPush(1));
  ASSERT_TRUE(Q.tryPush(2));
  Q.close();
  EXPECT_FALSE(Q.tryPush(3)) << "closed queue must refuse new work";
  int Out = 0;
  EXPECT_TRUE(Q.pop(Out)); // Accepted work still drains...
  EXPECT_TRUE(Q.pop(Out));
  EXPECT_FALSE(Q.pop(Out)) << "...then pop reports closed-and-drained";
}

TEST(JobQueue, DeliversEveryJobExactlyOnceAcrossThreads) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
  JobQueue<int> Q(8);
  std::atomic<int> Accepted{0};
  std::vector<std::atomic<int>> Seen(kProducers * kPerProducer);

  std::vector<std::thread> Threads;
  for (int P = 0; P < kProducers; ++P)
    Threads.emplace_back([&, P] {
      for (int I = 0; I < kPerProducer; ++I) {
        int Job = P * kPerProducer + I;
        // Mix blocking and non-blocking producers; retries model the
        // daemon's client-side retry-after loop.
        if (I % 2 ? Q.push(std::move(Job)) : [&] {
              int J = Job;
              while (!Q.tryPush(std::move(J)))
                std::this_thread::yield();
              return true;
            }())
          Accepted.fetch_add(1);
      }
    });
  for (int C = 0; C < kConsumers; ++C)
    Threads.emplace_back([&] {
      int Job;
      while (Q.pop(Job))
        Seen[static_cast<size_t>(Job)].fetch_add(1);
    });
  for (int P = 0; P < kProducers; ++P)
    Threads[static_cast<size_t>(P)].join();
  Q.close();
  for (size_t T = kProducers; T < Threads.size(); ++T)
    Threads[T].join();

  EXPECT_EQ(Accepted.load(), kProducers * kPerProducer);
  for (auto &S : Seen)
    EXPECT_EQ(S.load(), 1) << "each accepted job delivered exactly once";
}

//===----------------------------------------------------------------------===//
// CompileService: single-request semantics (processNow)
//===----------------------------------------------------------------------===//

ServiceConfig smallConfig(unsigned Workers = 2, std::size_t QueueCap = 4) {
  ServiceConfig C;
  C.Workers = Workers;
  C.QueueCap = QueueCap;
  return C;
}

ServiceRequest makeReq(std::string Id, std::string Source) {
  ServiceRequest R;
  R.Id = std::move(Id);
  R.Source = std::move(Source);
  return R;
}

TEST(CompileService, RunsACleanRequestAtTheFullRung) {
  CompileService Svc(smallConfig());
  ServiceResponse R =
      Svc.processNow(makeReq("ok", "x = 1 + 1; disp(x);"));
  EXPECT_TRUE(R.OK);
  EXPECT_EQ(R.Kind, ResponseKind::OK);
  EXPECT_EQ(R.Rung, "full");
  EXPECT_EQ(R.Output, "2\n");
  EXPECT_FALSE(R.Counters.empty()) << "per-request counters must ride along";
}

TEST(CompileService, InjectedFaultsMapToTheDocumentedRungs) {
  // The same ladder the robustness suite pins, now reachable per request
  // through the protocol's "fault" field.
  const std::map<std::string, std::string> StageToRung = {
      {"gctd", "identity-plans"},
      {"typeinf", "mcc-only"},
      {"ssa", "interp-only"},
      {"lower", "interp-only"},
  };
  CompileService Svc(smallConfig());
  for (const auto &[Stage, Rung] : StageToRung) {
    ServiceRequest R = makeReq("f-" + Stage, "x = 2 * 3; disp(x);");
    R.Fault = Stage;
    ServiceResponse Resp = Svc.processNow(R);
    EXPECT_TRUE(Resp.OK) << Stage << ": " << Resp.Error;
    EXPECT_EQ(Resp.Rung, Rung) << Stage;
    EXPECT_EQ(Resp.Output, "6\n") << "degraded rungs still agree on output";
  }
}

TEST(CompileService, UnknownFaultNameIsAProtocolErrorListingStages) {
  CompileService Svc(smallConfig());
  ServiceRequest R = makeReq("bad", "disp(1);");
  R.Fault = "frobnicate";
  ServiceResponse Resp = Svc.processNow(R);
  EXPECT_FALSE(Resp.OK);
  EXPECT_EQ(Resp.Kind, ResponseKind::Protocol);
  EXPECT_NE(Resp.Error.find("frobnicate"), std::string::npos);
  EXPECT_NE(Resp.Error.find("gctd"), std::string::npos)
      << "the error must list the valid stages: " << Resp.Error;
}

TEST(CompileService, CompileErrorsAreClassifiedPerRequest) {
  CompileService Svc(smallConfig());
  ServiceResponse R = Svc.processNow(makeReq("syn", "x = (((;"));
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(R.Kind, ResponseKind::CompileError);
  EXPECT_NE(R.Error.find("error"), std::string::npos);
}

TEST(CompileService, RuntimeTrapsAreClassifiedPerRequest) {
  CompileService Svc(smallConfig());
  ServiceResponse R =
      Svc.processNow(makeReq("trap", "a = [1 2 3]; disp(a(7));"));
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(R.Kind, ResponseKind::Trap);
  EXPECT_EQ(R.Trap, "index-out-of-bounds");
  EXPECT_NE(R.Error.find("line 1"), std::string::npos)
      << "trap provenance must survive the service layer: " << R.Error;
}

TEST(CompileService, DeadlineUnwindsARunawayLoopWithProvenance) {
  CompileService Svc(smallConfig());
  ServiceRequest R = makeReq("dl", "while true; end");
  R.DeadlineMs = 100;
  ServiceResponse Resp = Svc.processNow(R);
  EXPECT_FALSE(Resp.OK);
  EXPECT_EQ(Resp.Kind, ResponseKind::Deadline);
  EXPECT_EQ(Resp.Trap, "deadline");
  EXPECT_NE(Resp.Error.find("line 1"), std::string::npos) << Resp.Error;
  EXPECT_NE(Resp.Error.find("deadline exceeded"), std::string::npos);
}

TEST(CompileService, ProfileRequestsCarryADriftReport) {
  CompileService Svc(smallConfig());
  ServiceRequest R = makeReq(
      "prof", "a = zeros(4, 4); a(2, 2) = 5; disp(sum(a(:, 2)));");
  R.Profile = true;
  ServiceResponse Resp = Svc.processNow(R);
  ASSERT_TRUE(Resp.OK) << Resp.Error;
  EXPECT_FALSE(Resp.DriftReport.empty());
}

//===----------------------------------------------------------------------===//
// CompileService: concurrency, backpressure, deadlines in the queue
//===----------------------------------------------------------------------===//

TEST(CompileService, BackpressureRefusesWhenTheQueueIsFull) {
  // One worker, capacity-1 queue: a long request plus one queued job
  // saturates the service almost immediately.
  CompileService Svc(smallConfig(/*Workers=*/1, /*QueueCap=*/1));
  auto Sink = [](ServiceResponse) {};
  ServiceRequest Blocker = makeReq("blocker", "while true; end");
  Blocker.DeadlineMs = 1500;

  bool SawRefusal = false;
  for (int I = 0; I < 64 && !SawRefusal; ++I) {
    ServiceRequest R = Blocker;
    R.Id = "b" + std::to_string(I);
    if (!Svc.submit(R, Sink)) {
      SawRefusal = true;
      ServiceResponse Rej = Svc.backpressureResponse(R);
      EXPECT_EQ(Rej.Kind, ResponseKind::Backpressure);
      EXPECT_EQ(Rej.Id, R.Id);
      EXPECT_GT(Rej.RetryAfterMs, 0);
      std::string Line = Rej.toJson().dump();
      EXPECT_NE(Line.find("\"rejected\":true"), std::string::npos) << Line;
      EXPECT_NE(Line.find("retry_after_ms"), std::string::npos) << Line;
    }
  }
  EXPECT_TRUE(SawRefusal)
      << "a 1-worker/1-slot service must refuse the 3rd concurrent request";
  Svc.shutdown();
}

TEST(CompileService, DeadlinesKeepTickingInTheQueue) {
  // A single worker pinned by a long job; short-deadline jobs behind it
  // must die of old age *in the queue* without burning a compile.
  CompileService Svc(smallConfig(/*Workers=*/1, /*QueueCap=*/4));
  ServiceRequest Blocker = makeReq("pin", "while true; end");
  Blocker.DeadlineMs = 600;
  ASSERT_TRUE(Svc.submit(Blocker, [](ServiceResponse) {}));

  std::mutex Mu;
  std::vector<ServiceResponse> Out;
  ServiceRequest Starved = makeReq("starved", "disp(1 + 1);");
  Starved.DeadlineMs = 50;
  ASSERT_TRUE(Svc.submit(Starved, [&](ServiceResponse R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Out.push_back(std::move(R));
  }));

  Svc.drain();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Kind, ResponseKind::Deadline);
  EXPECT_NE(Out[0].Error.find("queued"), std::string::npos)
      << "expiry location should be classified: " << Out[0].Error;
  EXPECT_EQ(Out[0].Ops, 0u) << "an expired request must not burn a run";
}

TEST(CompileService, ShutdownFinishesAcceptedWork) {
  std::atomic<int> Done{0};
  {
    CompileService Svc(smallConfig(/*Workers=*/2, /*QueueCap=*/8));
    for (int I = 0; I < 6; ++I)
      ASSERT_TRUE(Svc.submit(makeReq("s" + std::to_string(I),
                                     "x = " + std::to_string(I) +
                                         "; disp(x);"),
                             [&](ServiceResponse R) {
                               EXPECT_TRUE(R.OK) << R.Error;
                               Done.fetch_add(1);
                             }));
    // Destructor path: close-then-drain must deliver all six replies.
  }
  EXPECT_EQ(Done.load(), 6);
}

//===----------------------------------------------------------------------===//
// The storm: N workers x M requests, ~20% faults, mixed deadlines.
//===----------------------------------------------------------------------===//

/// One storm request: a deterministic source parameterized by index, a
/// fault on every 5th request (20%), and a tight deadline on every 9th.
ServiceRequest stormRequest(int I) {
  static const char *Faults[] = {"gctd", "typeinf", "ssa", "lower"};
  std::string N = std::to_string(3 + I % 5);
  std::string Src;
  switch (I % 4) {
  case 0:
    Src = "x = rand(" + N + "); disp(sum(x(:, 1)));";
    break;
  case 1:
    Src = "a = zeros(" + N + ", " + N + "); a(1, 1) = " +
          std::to_string(I) + "; disp(sum(a(:, 1)));";
    break;
  case 2:
    Src = "s = 0; for i = 1:" + N + "; s = s + i * i; end; disp(s);";
    break;
  default:
    Src = "v = ones(1, " + N + ") * " + std::to_string(I % 7) +
          "; disp(sum(v));";
    break;
  }
  ServiceRequest R = makeReq("storm-" + std::to_string(I), Src);
  R.Seed = 1000 + static_cast<std::uint64_t>(I);
  if (I % 5 == 0)
    R.Fault = Faults[(I / 5) % 4];
  if (I % 9 == 0)
    R.DeadlineMs = 1; // Tight: may or may not expire; must stay classified.
  return R;
}

bool isClassified(ResponseKind K) {
  switch (K) {
  case ResponseKind::OK:
  case ResponseKind::Backpressure:
  case ResponseKind::Protocol:
  case ResponseKind::CompileError:
  case ResponseKind::Trap:
  case ResponseKind::Deadline:
  case ResponseKind::Internal:
  case ResponseKind::Shutdown:
    return true;
  }
  return false;
}

TEST(CompileServiceStorm, HundredRequestsEightWorkersMatchSerialOracle) {
  constexpr int kRequests = 100;
  ServiceConfig Cfg;
  Cfg.Workers = 8;
  Cfg.QueueCap = 16;
  Cfg.RetryAfterMs = 2;
  CompileService Svc(Cfg);

  std::mutex Mu;
  std::map<std::string, ServiceResponse> ById;
  int Backpressured = 0;

  for (int I = 0; I < kRequests; ++I) {
    ServiceRequest R = stormRequest(I);
    auto Record = [&Mu, &ById](ServiceResponse Resp) {
      std::lock_guard<std::mutex> Lock(Mu);
      ById.emplace(Resp.Id, std::move(Resp));
    };
    // Client-side retry-after loop: bounded retries, then give up loudly.
    int Attempts = 0;
    while (!Svc.submit(R, Record)) {
      ++Backpressured;
      ServiceResponse Rej = Svc.backpressureResponse(R);
      ASSERT_EQ(Rej.Kind, ResponseKind::Backpressure);
      ASSERT_LT(++Attempts, 10000) << "service never freed a queue slot";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Rej.RetryAfterMs));
    }
  }
  Svc.drain();

  // Every admitted request answered, exactly once, with a classified kind.
  ASSERT_EQ(ById.size(), static_cast<size_t>(kRequests));
  for (const auto &[Id, Resp] : ById) {
    EXPECT_TRUE(isClassified(Resp.Kind)) << Id;
    if (Resp.OK)
      EXPECT_FALSE(Resp.Rung.empty()) << Id;
    else
      EXPECT_FALSE(Resp.Error.empty()) << Id;
  }

  // Byte-identical agreement with the serial oracle for every request
  // whose outcome cannot be timing-dependent (no deadline).
  CompileService Oracle(smallConfig(1, 1));
  int Compared = 0;
  for (int I = 0; I < kRequests; ++I) {
    ServiceRequest R = stormRequest(I);
    if (R.DeadlineMs >= 0)
      continue;
    const ServiceResponse &Got = ById.at(R.Id);
    ServiceResponse Want = Oracle.processNow(R);
    EXPECT_EQ(Got.OK, Want.OK) << R.Id << ": " << Got.Error;
    EXPECT_EQ(Got.Kind, Want.Kind) << R.Id;
    EXPECT_EQ(Got.Rung, Want.Rung) << R.Id;
    EXPECT_EQ(Got.Output, Want.Output)
        << R.Id << ": concurrent and serial runs must be byte-identical";
    EXPECT_EQ(Got.Counters == Want.Counters, true)
        << R.Id << ": per-request counters must not bleed across workers";
    ++Compared;
  }
  EXPECT_GE(Compared, 80) << "the oracle comparison must cover the bulk";

  // The aggregate saw everything; the stats endpoint stays parseable.
  std::string Err;
  std::optional<JsonValue> Stats = JsonValue::parse(Svc.statsJson(), Err);
  ASSERT_TRUE(Stats.has_value()) << Err;
  EXPECT_EQ(Stats->get("counters").get("svc.requests.completed").asInt(),
            kRequests);
  (void)Backpressured; // Informational; depends on scheduling.
}

//===----------------------------------------------------------------------===//
// Envelope codec
//===----------------------------------------------------------------------===//

TEST(ServiceEnvelope, RequestDecodingValidatesTypes) {
  ServiceRequest R;
  std::string Err;
  EXPECT_FALSE(
      ServiceRequest::fromJson(parseOK("{\"id\":\"x\"}"), R, Err));
  EXPECT_NE(Err.find("source"), std::string::npos);
  EXPECT_FALSE(ServiceRequest::fromJson(
      parseOK(R"({"source":"disp(1);","deadline_ms":-5})"), R, Err));
  ASSERT_TRUE(ServiceRequest::fromJson(
      parseOK(
          R"({"id":"q","source":"disp(1);","fault":"gctd","seed":7,)"
          R"("deadline_ms":0,"no_fuse":true,"profile":true})"),
      R, Err))
      << Err;
  EXPECT_EQ(R.Id, "q");
  EXPECT_EQ(R.Fault, "gctd");
  EXPECT_EQ(R.Seed, 7u);
  EXPECT_EQ(R.DeadlineMs, 0);
  EXPECT_TRUE(R.NoFuse);
  EXPECT_TRUE(R.Profile);
}

TEST(ServiceEnvelope, ResponseJsonCarriesTheContractFields) {
  ServiceResponse R;
  R.Id = "e1";
  R.Kind = ResponseKind::Deadline;
  R.Trap = "deadline";
  R.Error = "line 3 (mul): deadline exceeded";
  R.Rung = "full";
  std::string Line = R.toJson().dump();
  JsonValue Back = parseOK(Line);
  EXPECT_EQ(Back.get("kind").asString(), "deadline");
  EXPECT_EQ(Back.get("trap").asString(), "deadline");
  EXPECT_EQ(Back.get("rung").asString(), "full");
  EXPECT_FALSE(Back.get("ok").asBool());
  EXPECT_NE(Back.get("error").asString().find("line 3"), std::string::npos);
}

} // namespace
