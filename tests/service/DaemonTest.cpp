//===- DaemonTest.cpp - matcoald end-to-end protocol tests ----------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// Drives the real matcoald binary (path baked in as MATCOALD_PATH)
// through its stdin/stdout NDJSON framing via the shared timeout-
// enforcing subprocess helper -- the same discipline as the cc-driven
// codegen tests: a hung daemon is a test failure, not a hung suite.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace matcoal;

namespace {

/// Feeds \p Lines to matcoald over stdin via `sh -c 'printf ... | ...'`
/// and returns the captured stdout. The pipeline runs under the helper's
/// watchdog, so a wedged daemon dies with a diagnosis.
SubprocessResult runDaemon(const std::vector<std::string> &Lines,
                           const std::string &DaemonArgs = "--workers=2",
                           const std::vector<std::pair<std::string,
                                                       std::string>> &Env =
                               {}) {
  std::string Script = "printf '%s\\n'";
  for (const std::string &L : Lines) {
    // Single-quote for sh; the protocol never needs a literal ' here.
    EXPECT_EQ(L.find('\''), std::string::npos) << L;
    Script += " '" + L + "'";
  }
  Script += " | '";
  Script += MATCOALD_PATH;
  Script += "' " + DaemonArgs;
  return runSubprocess({"sh", "-c", Script}, /*TimeoutMs=*/60000, Env);
}

TEST(MatcoaldDaemon, ServesComputeStatsAndShutdownOverStdin) {
  SubprocessResult R = runDaemon({
      R"({"id":"a","source":"x = 1 + 1; disp(x);"})",
      R"({"id":"b","source":"disp(oops(","fault":"gctd"})",
      R"({"id":"s","op":"stats"})",
      R"({"id":"z","op":"shutdown"})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"id\":\"a\""), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"output\":\"2\\n\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"compile-error\""), std::string::npos)
      << R.Output;
  // Stats are point-in-time (they can answer before queued compiles
  // finish); assert the endpoint shape, not the racy counter values --
  // the storm test pins the aggregate deterministically after drain().
  EXPECT_NE(R.Output.find("\"kind\":\"stats\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("queue_capacity"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"shutdown\""), std::string::npos)
      << R.Output;
}

TEST(MatcoaldDaemon, SurvivesPoisonLinesAndKeepsServing) {
  SubprocessResult R = runDaemon({
      "this is not json",
      R"({"id":"only-id"})",
      R"({"id":"bad-fault","source":"disp(1);","fault":"frobnicate"})",
      R"({"id":"bad-op","source":"disp(1);","op":"dance"})",
      R"({"id":"after","source":"x = 40 + 2; disp(x);"})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << "poison input must never kill the daemon: "
                           << R.Output;
  EXPECT_NE(R.Output.find("bad request JSON"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("missing a string 'source'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("frobnicate"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("unknown op"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"output\":\"42\\n\""), std::string::npos)
      << "the request after the poison must still run: " << R.Output;
}

TEST(MatcoaldDaemon, DeadlineRequestsComeBackClassified) {
  SubprocessResult R = runDaemon({
      R"({"id":"dl","source":"while true; end","deadline_ms":150})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("\"kind\":\"deadline\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("deadline exceeded"), std::string::npos)
      << R.Output;
}

TEST(MatcoaldDaemon, MetricsAndDumpOpsServeTheObservabilityAggregates) {
  SubprocessResult R = runDaemon({
      R"({"id":"a","source":"x = 6 * 7; disp(x);","trace":true})",
      R"({"id":"m","op":"metrics"})",
      R"({"id":"d","op":"dump"})",
      R"({"id":"z","op":"shutdown"})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // The traced compile reply carries its server-assigned id and spans.
  EXPECT_NE(R.Output.find("\"request_id\":\"req-"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"spans\":{\"name\":\"request\""),
            std::string::npos)
      << R.Output;
  // The metrics op returns Prometheus text exposition (escaped into the
  // JSON string). Like stats, it is point-in-time -- it may answer before
  // the queued compile folds in -- so assert the endpoint shape only; the
  // histogram contents are pinned deterministically in TraceTest after
  // processNow.
  EXPECT_NE(R.Output.find("\"kind\":\"metrics\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("# TYPE matcoal_queue_depth gauge"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("# TYPE matcoal_inflight_requests gauge"),
            std::string::npos)
      << R.Output;
  // The dump op returns the flight-recorder ring as structured JSON.
  EXPECT_NE(R.Output.find("\"kind\":\"dump\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"capacity\":256"), std::string::npos)
      << R.Output;
}

TEST(MatcoaldDaemon, TraceOutWritesAMergedChromeTraceAtShutdown) {
  // The daemon writes the merged trace on the stdin (implicit-shutdown)
  // path; the file lands after exit, so a follow-up cat observes it.
  std::string Script = std::string("printf '%s\\n'") +
                       R"( '{"id":"a","source":"disp(2 + 2);"}')" +
                       R"( '{"id":"b","source":"disp(3 + 3);"}')" + " | '" +
                       MATCOALD_PATH +
                       "' --workers=2 --trace-out=trace_out_test.json" +
                       " >/dev/null && cat trace_out_test.json" +
                       " && rm -f trace_out_test.json";
  SubprocessResult R = runSubprocess({"sh", "-c", Script},
                                     /*TimeoutMs=*/60000, {});
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"traceEvents\""), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"request_id\": \"req-"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"ph\": \"M\""), std::string::npos)
      << "worker-lane thread_name metadata must be present: " << R.Output;
}

TEST(MatcoaldDaemon, UnrecognizedFaultEnvIsALoudStartupError) {
  // Satellite contract: a typo'd MATCOAL_FAULT is a refusal to start
  // (exit 2), never a silently ignored setting.
  SubprocessResult R =
      runDaemon({R"({"id":"x","source":"disp(1);"})"}, "--workers=1",
                {{"MATCOAL_FAULT", "frobnicate"}});
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_EQ(R.Output.find("\"id\":\"x\""), std::string::npos)
      << "no request may be served under a bad fault config: " << R.Output;
}

TEST(MatcoaldDaemon, UsageErrorsExitTwo) {
  SubprocessResult R = runDaemon({}, "--workers=0");
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 2);
  SubprocessResult R2 = runDaemon({}, "--no-such-flag");
  ASSERT_EQ(R2.St, SubprocessResult::Status::OK) << R2.Diag;
  EXPECT_EQ(R2.ExitCode, 2);
}

} // namespace
