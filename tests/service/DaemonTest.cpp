//===- DaemonTest.cpp - matcoald end-to-end protocol tests ----------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// Drives the real matcoald binary (path baked in as MATCOALD_PATH)
// through its stdin/stdout NDJSON framing via the shared timeout-
// enforcing subprocess helper -- the same discipline as the cc-driven
// codegen tests: a hung daemon is a test failure, not a hung suite.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace matcoal;

namespace {

/// Feeds \p Lines to matcoald over stdin via `sh -c 'printf ... | ...'`
/// and returns the captured stdout. The pipeline runs under the helper's
/// watchdog, so a wedged daemon dies with a diagnosis.
SubprocessResult runDaemon(const std::vector<std::string> &Lines,
                           const std::string &DaemonArgs = "--workers=2",
                           const std::vector<std::pair<std::string,
                                                       std::string>> &Env =
                               {}) {
  std::string Script = "printf '%s\\n'";
  for (const std::string &L : Lines) {
    // Single-quote for sh; the protocol never needs a literal ' here.
    EXPECT_EQ(L.find('\''), std::string::npos) << L;
    Script += " '" + L + "'";
  }
  Script += " | '";
  Script += MATCOALD_PATH;
  Script += "' " + DaemonArgs;
  return runSubprocess({"sh", "-c", Script}, /*TimeoutMs=*/60000, Env);
}

TEST(MatcoaldDaemon, ServesComputeStatsAndShutdownOverStdin) {
  SubprocessResult R = runDaemon({
      R"({"id":"a","source":"x = 1 + 1; disp(x);"})",
      R"({"id":"b","source":"disp(oops(","fault":"gctd"})",
      R"({"id":"s","op":"stats"})",
      R"({"id":"z","op":"shutdown"})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"id\":\"a\""), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"output\":\"2\\n\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"compile-error\""), std::string::npos)
      << R.Output;
  // Stats are point-in-time (they can answer before queued compiles
  // finish); assert the endpoint shape, not the racy counter values --
  // the storm test pins the aggregate deterministically after drain().
  EXPECT_NE(R.Output.find("\"kind\":\"stats\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("queue_capacity"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"shutdown\""), std::string::npos)
      << R.Output;
}

TEST(MatcoaldDaemon, SurvivesPoisonLinesAndKeepsServing) {
  SubprocessResult R = runDaemon({
      "this is not json",
      R"({"id":"only-id"})",
      R"({"id":"bad-fault","source":"disp(1);","fault":"frobnicate"})",
      R"({"id":"bad-op","source":"disp(1);","op":"dance"})",
      R"({"id":"after","source":"x = 40 + 2; disp(x);"})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0) << "poison input must never kill the daemon: "
                           << R.Output;
  EXPECT_NE(R.Output.find("bad request JSON"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("missing a string 'source'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("frobnicate"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("unknown op"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"output\":\"42\\n\""), std::string::npos)
      << "the request after the poison must still run: " << R.Output;
}

TEST(MatcoaldDaemon, DeadlineRequestsComeBackClassified) {
  SubprocessResult R = runDaemon({
      R"({"id":"dl","source":"while true; end","deadline_ms":150})",
  });
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("\"kind\":\"deadline\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("deadline exceeded"), std::string::npos)
      << R.Output;
}

TEST(MatcoaldDaemon, UnrecognizedFaultEnvIsALoudStartupError) {
  // Satellite contract: a typo'd MATCOAL_FAULT is a refusal to start
  // (exit 2), never a silently ignored setting.
  SubprocessResult R =
      runDaemon({R"({"id":"x","source":"disp(1);"})"}, "--workers=1",
                {{"MATCOAL_FAULT", "frobnicate"}});
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_EQ(R.Output.find("\"id\":\"x\""), std::string::npos)
      << "no request may be served under a bad fault config: " << R.Output;
}

TEST(MatcoaldDaemon, UsageErrorsExitTwo) {
  SubprocessResult R = runDaemon({}, "--workers=0");
  ASSERT_EQ(R.St, SubprocessResult::Status::OK) << R.Diag;
  EXPECT_EQ(R.ExitCode, 2);
  SubprocessResult R2 = runDaemon({}, "--no-such-flag");
  ASSERT_EQ(R2.St, SubprocessResult::Status::OK) << R2.Diag;
  EXPECT_EQ(R2.ExitCode, 2);
}

} // namespace
