//===- TraceTest.cpp - Request tracing and service-metrics tests ----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// The observability contract on top of the service layer: every request
// carries a span tree (queue wait, compile stages, tier dispatch, run)
// whose STRUCTURE is deterministic; the `metrics` aggregate is valid
// Prometheus text with ordered quantiles; deadline-expired requests leave
// their spans in the flight recorder; and a concurrent storm under
// KeepSpans yields a well-formed merged Chrome trace with one complete
// span tree per request and zero orphans.
//
//===----------------------------------------------------------------------===//

#include "observe/Span.h"
#include "service/Json.h"
#include "service/Service.h"

#include "gtest/gtest.h"

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace matcoal;

namespace {

ServiceConfig smallConfig(unsigned Workers = 2, std::size_t QueueCap = 8) {
  ServiceConfig C;
  C.Workers = Workers;
  C.QueueCap = QueueCap;
  return C;
}

ServiceRequest traceReq(std::string Id, std::string Source) {
  ServiceRequest R;
  R.Id = std::move(Id);
  R.Source = std::move(Source);
  R.Trace = true;
  return R;
}

JsonValue parseOK(const std::string &Text) {
  std::string Err;
  std::optional<JsonValue> V = JsonValue::parse(Text, Err);
  EXPECT_TRUE(V.has_value()) << Err << "\nin: " << Text;
  return V ? *V : JsonValue::null();
}

/// The wall-time-free skeleton of a span tree: "name(child,child,...)".
/// Two runs of the same request must produce identical skeletons even
/// though every start/duration differs.
std::string structureOf(const JsonValue &Node) {
  std::string S = Node.get("name").asString() + "(";
  bool First = true;
  for (const JsonValue &C : Node.get("children").items()) {
    if (!First)
      S += ",";
    First = false;
    S += structureOf(C);
  }
  return S + ")";
}

/// Depth-first collection of every span name in the tree.
void collectNames(const JsonValue &Node, std::set<std::string> &Out) {
  Out.insert(Node.get("name").asString());
  for (const JsonValue &C : Node.get("children").items())
    collectNames(C, Out);
}

//===----------------------------------------------------------------------===//
// Span trees in the response envelope
//===----------------------------------------------------------------------===//

TEST(RequestTrace, EnvelopeCoversQueueCompileStagesDispatchAndRun) {
  CompileService Svc(smallConfig());
  ServiceResponse R =
      Svc.processNow(traceReq("t1", "x = 1 + 1; disp(x);"));
  ASSERT_TRUE(R.OK) << R.Error;
  ASSERT_FALSE(R.SpansJson.empty()) << "trace:true must attach spans";
  EXPECT_FALSE(R.RequestId.empty());
  JsonValue Tree = parseOK(R.SpansJson);
  EXPECT_EQ(Tree.get("name").asString(), "request");
  std::set<std::string> Names;
  collectNames(Tree, Names);
  // The acceptance list: queue wait, every compile stage, tier dispatch,
  // the run itself.
  for (const char *Must :
       {"queue", "compile", "parse", "lower", "ssa", "cleanup", "typeinf",
        "invert", "dispatch", "run"})
    EXPECT_TRUE(Names.count(Must)) << "span tree is missing '" << Must
                                   << "' in " << R.SpansJson;
  // The envelope's JSON form nests the same tree under "spans".
  JsonValue Env = R.toJson();
  EXPECT_EQ(Env.get("spans").get("name").asString(), "request");
  EXPECT_EQ(Env.get("request_id").asString(), R.RequestId);
}

TEST(RequestTrace, UntracedRequestsCarryNoSpansButStillGetAnId) {
  CompileService Svc(smallConfig());
  ServiceRequest R;
  R.Id = "plain";
  R.Source = "disp(7);";
  ServiceResponse Resp = Svc.processNow(R);
  ASSERT_TRUE(Resp.OK) << Resp.Error;
  EXPECT_TRUE(Resp.SpansJson.empty());
  EXPECT_FALSE(Resp.RequestId.empty());
}

TEST(RequestTrace, SpanStructureIsDeterministicAcrossRuns) {
  CompileService Svc(smallConfig());
  const std::string Src =
      "a = zeros(8, 8); a(3, 3) = 2; disp(sum(a(:, 3)));";
  ServiceResponse A = Svc.processNow(traceReq("d1", Src));
  ServiceResponse B = Svc.processNow(traceReq("d2", Src));
  ASSERT_TRUE(A.OK) << A.Error;
  ASSERT_TRUE(B.OK) << B.Error;
  std::string SA = structureOf(parseOK(A.SpansJson));
  std::string SB = structureOf(parseOK(B.SpansJson));
  EXPECT_EQ(SA, SB)
      << "identical requests must produce identical span structure";
  EXPECT_NE(A.RequestId, B.RequestId) << "request ids stay unique";
}

TEST(RequestTrace, FailedCompilesStillProduceAWellFormedTree) {
  CompileService Svc(smallConfig());
  ServiceResponse R = Svc.processNow(traceReq("bad", "x = (((;"));
  EXPECT_FALSE(R.OK);
  ASSERT_FALSE(R.SpansJson.empty());
  JsonValue Tree = parseOK(R.SpansJson);
  std::set<std::string> Names;
  collectNames(Tree, Names);
  EXPECT_TRUE(Names.count("compile"));
  EXPECT_FALSE(Names.count("run")) << "nothing ran; no run span";
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, DeadlineExpiryLeavesTheRequestsSpansInTheDump) {
  CompileService Svc(smallConfig());
  ServiceRequest R = traceReq("dl", "while true; end");
  R.DeadlineMs = 80;
  ServiceResponse Resp = Svc.processNow(R);
  EXPECT_EQ(Resp.Kind, ResponseKind::Deadline);
  JsonValue Dump = parseOK(Svc.flightDumpJson());
  EXPECT_GT(Dump.get("recorded").asInt(), 0);
  bool SawTrap = false, SawRunSpan = false, SawRequest = false;
  for (const JsonValue &E : Dump.get("events").items()) {
    if (E.get("request_id").asString() != Resp.RequestId)
      continue;
    const std::string &Kind = E.get("kind").asString();
    SawTrap |= Kind == "trap";
    SawRequest |= Kind == "deadline" || Kind == "request";
    SawRunSpan |= Kind == "span" && E.get("name").asString() == "run";
  }
  EXPECT_TRUE(SawTrap) << Svc.flightDumpJson();
  EXPECT_TRUE(SawRequest);
  EXPECT_TRUE(SawRunSpan)
      << "the expired request's spans must survive in the ring";
}

TEST(FlightRecorder, CleanRequestsRecordOnlyTheirCompletionEvent) {
  CompileService Svc(smallConfig());
  ServiceResponse R = Svc.processNow(traceReq("ok", "disp(4);"));
  ASSERT_TRUE(R.OK) << R.Error;
  JsonValue Dump = parseOK(Svc.flightDumpJson());
  int Mine = 0;
  for (const JsonValue &E : Dump.get("events").items())
    if (E.get("request_id").asString() == R.RequestId) {
      ++Mine;
      EXPECT_EQ(E.get("kind").asString(), "request")
          << "a clean request records no span/trap events";
    }
  EXPECT_EQ(Mine, 1);
}

//===----------------------------------------------------------------------===//
// Metrics exposition
//===----------------------------------------------------------------------===//

TEST(Metrics, ExpositionIsWellFormedWithOrderedQuantiles) {
  CompileService Svc(smallConfig());
  for (int I = 0; I < 3; ++I) {
    ServiceResponse R = Svc.processNow(
        traceReq("m" + std::to_string(I), "x = 2 * 3; disp(x);"));
    ASSERT_TRUE(R.OK) << R.Error;
  }
  std::string Text = Svc.metricsText();
  // Every request histogram family is typed and carries p50/p95/p99.
  for (const char *Family :
       {"matcoal_svc_e2e_us", "matcoal_svc_queue_us",
        "matcoal_svc_compile_us", "matcoal_svc_run_us"}) {
    std::string F(Family);
    EXPECT_NE(Text.find("# TYPE " + F + " histogram"), std::string::npos)
        << Family;
    EXPECT_NE(Text.find(F + "_bucket{le=\"+Inf\"} 3"), std::string::npos)
        << Family << " must count all three requests:\n" << Text;
    EXPECT_NE(Text.find(F + "_count 3"), std::string::npos) << Family;
    for (const char *Q : {"0.5", "0.95", "0.99"})
      EXPECT_NE(Text.find(F + "{quantile=\"" + Q + "\"}"),
                std::string::npos)
          << Family << " quantile " << Q;
  }
  EXPECT_NE(Text.find("# TYPE matcoal_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE matcoal_inflight_requests gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("matcoal_counter{name=\"svc.requests.completed\"} 3"),
            std::string::npos)
      << Text;
}

TEST(Metrics, StatsJsonCarriesGaugesAndHistogramSummaries) {
  CompileService Svc(smallConfig());
  ASSERT_TRUE(Svc.processNow(traceReq("g", "disp(1 + 2);")).OK);
  JsonValue Stats = parseOK(Svc.statsJson());
  EXPECT_EQ(Stats.get("gauges").get("queue_depth").asInt(-1), 0);
  EXPECT_EQ(Stats.get("gauges").get("inflight").asInt(-1), 0);
  const JsonValue &E2e = Stats.get("histograms").get("svc.e2e_us");
  EXPECT_EQ(E2e.get("count").asInt(), 1);
  EXPECT_GT(E2e.get("sum").asInt(), 0);
}

//===----------------------------------------------------------------------===//
// The merged Chrome trace under a storm
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, StormYieldsOneCompleteTreePerRequestAndNoOrphans) {
  constexpr int kRequests = 24;
  ServiceConfig Cfg = smallConfig(/*Workers=*/4, /*QueueCap=*/kRequests);
  Cfg.KeepSpans = true;
  CompileService Svc(Cfg);
  std::atomic<int> Done{0};
  for (int I = 0; I < kRequests; ++I) {
    ServiceRequest R;
    R.Id = "s" + std::to_string(I);
    // Mix outcomes: every 5th request is a compile error, every 7th a
    // runtime trap; spans must stay complete either way.
    R.Source = I % 5 == 0   ? "x = (((;"
               : I % 7 == 0 ? "a = [1 2]; disp(a(9));"
                            : "s = 0; for i = 1:50; s = s + i; end; disp(s);";
    while (!Svc.submit(R, [&Done](ServiceResponse) { ++Done; }))
      std::this_thread::yield();
  }
  Svc.drain();
  ASSERT_EQ(Done.load(), kRequests);

  JsonValue Trace = parseOK(Svc.chromeTraceJson());
  const std::vector<JsonValue> &Events = Trace.get("traceEvents").items();
  ASSERT_FALSE(Events.empty());

  // Index the complete ("X") events by request id.
  std::map<std::string, std::set<std::string>> NamesByReq;
  std::map<std::string, int> RootsByReq;
  for (const JsonValue &E : Events) {
    if (E.get("ph").asString() != "X")
      continue;
    const std::string &Rid = E.get("args").get("request_id").asString();
    EXPECT_FALSE(Rid.empty()) << "every span names its request";
    NamesByReq[Rid].insert(E.get("name").asString());
    if (E.get("args").get("parent").asString().empty())
      ++RootsByReq[Rid];
  }
  EXPECT_EQ(NamesByReq.size(), static_cast<std::size_t>(kRequests))
      << "one span tree per request";
  for (const auto &[Rid, Names] : NamesByReq) {
    EXPECT_EQ(RootsByReq[Rid], 1) << Rid << ": exactly one root span";
    EXPECT_TRUE(Names.count("request")) << Rid;
    EXPECT_TRUE(Names.count("queue")) << Rid;
    EXPECT_TRUE(Names.count("compile")) << Rid;
  }
  // Zero orphans: every non-root event's parent is a span that exists in
  // the same request's tree.
  for (const JsonValue &E : Events) {
    if (E.get("ph").asString() != "X")
      continue;
    const std::string &Parent = E.get("args").get("parent").asString();
    if (Parent.empty())
      continue;
    const std::string &Rid = E.get("args").get("request_id").asString();
    EXPECT_TRUE(NamesByReq[Rid].count(Parent))
        << "orphan span '" << E.get("name").asString() << "' under "
        << Rid;
  }
}

//===----------------------------------------------------------------------===//
// SpanRecorder unit behavior the service contracts lean on
//===----------------------------------------------------------------------===//

TEST(SpanRecorder, StructureTextStripsWallTimes) {
  SpanRecorder A, B;
  int RA = A.begin("request", 100);
  int CA = A.begin("compile", 110);
  A.leaf("parse", 111, 5);
  A.end(CA, 200);
  A.end(RA, 300);
  int RB = B.begin("request", 9000);
  int CB = B.begin("compile", 9001);
  B.leaf("parse", 9002, 700);
  B.end(CB, 9900);
  B.end(RB, 9999);
  EXPECT_EQ(A.structureText(), B.structureText());
  EXPECT_TRUE(A.allClosed());
}

TEST(SpanRecorder, EndClosesDanglingChildren) {
  SpanRecorder R;
  int Root = R.begin("request", 10);
  R.begin("compile", 20); // Never explicitly ended.
  R.end(Root, 50);
  EXPECT_TRUE(R.allClosed());
  JsonValue Tree = parseOK(R.treeJson());
  EXPECT_EQ(Tree.get("children").items().size(), 1u);
}

} // namespace
