//===- DominatorsTest.cpp - Hand-built CFG coverage for DominatorTree -----===//
//
// The source-level tests in AnalysisTest.cpp cover the shapes the
// frontend actually produces; these build CFGs by hand to pin the edge
// cases a lowering change could stop producing: loop back-edges,
// unreachable (dead) blocks, and multi-return functions.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace matcoal;

namespace {

Instr constant(VarId R, double V) {
  Instr I;
  I.Op = Opcode::ConstNum;
  I.Results = {R};
  I.NumRe = V;
  return I;
}

Instr binop(Opcode Op, VarId R, VarId A, VarId B) {
  Instr I;
  I.Op = Op;
  I.Results = {R};
  I.Operands = {A, B};
  return I;
}

Instr jmp(BlockId T) {
  Instr I;
  I.Op = Opcode::Jmp;
  I.Target1 = T;
  return I;
}

Instr br(VarId C, BlockId T, BlockId F) {
  Instr I;
  I.Op = Opcode::Br;
  I.Operands = {C};
  I.Target1 = T;
  I.Target2 = F;
  return I;
}

Instr ret() {
  Instr I;
  I.Op = Opcode::Ret;
  return I;
}

bool contains(const std::vector<BlockId> &Xs, BlockId B) {
  return std::find(Xs.begin(), Xs.end(), B) != Xs.end();
}

//   B0 (entry)  ->  B1 (header)  ->  B3 (exit)
//                     ^    |
//                     |    v
//                     +-- B2 (body, back-edge to B1)
TEST(DominatorsHandBuilt, LoopBackEdge) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId C = F.getOrCreateVar("c");
  VarId X = F.getOrCreateVar("x");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  BasicBlock *B3 = F.addBlock();
  B0->Instrs = {constant(C, 1), constant(X, 0), jmp(B1->Id)};
  B1->Instrs = {br(C, B2->Id, B3->Id)};
  B2->Instrs = {binop(Opcode::Add, X, X, C), jmp(B1->Id)};
  B3->Instrs = {ret()};
  F.recomputePreds();

  DominatorTree DT(F);
  EXPECT_EQ(DT.idom(B0->Id), NoBlock);
  EXPECT_EQ(DT.idom(B1->Id), B0->Id);
  EXPECT_EQ(DT.idom(B2->Id), B1->Id);
  EXPECT_EQ(DT.idom(B3->Id), B1->Id);
  // The header dominates both the body and the exit; the back-edge source
  // dominates neither the header nor the exit.
  EXPECT_TRUE(DT.dominates(B1->Id, B2->Id));
  EXPECT_TRUE(DT.dominates(B1->Id, B3->Id));
  EXPECT_FALSE(DT.dominates(B2->Id, B1->Id));
  EXPECT_FALSE(DT.dominates(B2->Id, B3->Id));
  // The back edge puts the header in both the body's frontier and (since
  // the header dominates its own predecessor) its own.
  EXPECT_TRUE(contains(DT.frontier(B2->Id), B1->Id));
  EXPECT_TRUE(contains(DT.frontier(B1->Id), B1->Id));
}

// B0: ret.  B1, B2: an unreachable cycle feeding back into B0's world.
TEST(DominatorsHandBuilt, DeadBlocksAreUnreachable) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId X = F.getOrCreateVar("x");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  B0->Instrs = {constant(X, 1), ret()};
  B1->Instrs = {jmp(B2->Id)};
  B2->Instrs = {jmp(B1->Id)};
  F.recomputePreds();

  DominatorTree DT(F);
  EXPECT_TRUE(DT.isReachable(B0->Id));
  EXPECT_FALSE(DT.isReachable(B1->Id));
  EXPECT_FALSE(DT.isReachable(B2->Id));
  EXPECT_EQ(DT.idom(B1->Id), NoBlock);
  EXPECT_EQ(DT.idom(B2->Id), NoBlock);
  // Dead blocks never appear in the RPO or in anyone's frontier.
  EXPECT_FALSE(contains(DT.rpo(), B1->Id));
  EXPECT_FALSE(contains(DT.rpo(), B2->Id));
  EXPECT_TRUE(DT.frontier(B1->Id).empty());
  // The entry still dominates only what it reaches.
  EXPECT_FALSE(DT.dominates(B1->Id, B0->Id));
}

// B0 branches to two returning arms: no join block exists.
TEST(DominatorsHandBuilt, MultiReturn) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId C = F.getOrCreateVar("c");
  VarId A = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  B0->Instrs = {constant(C, 1), br(C, B1->Id, B2->Id)};
  B1->Instrs = {constant(A, 2), ret()};
  B2->Instrs = {constant(B, 3), ret()};
  F.recomputePreds();

  DominatorTree DT(F);
  EXPECT_EQ(DT.idom(B1->Id), B0->Id);
  EXPECT_EQ(DT.idom(B2->Id), B0->Id);
  EXPECT_FALSE(DT.dominates(B1->Id, B2->Id));
  EXPECT_FALSE(DT.dominates(B2->Id, B1->Id));
  // With no join, neither arm has a dominance frontier.
  EXPECT_TRUE(DT.frontier(B1->Id).empty());
  EXPECT_TRUE(DT.frontier(B2->Id).empty());
  // Both arms are the branch block's dominator-tree children.
  EXPECT_TRUE(contains(DT.children(B0->Id), B1->Id));
  EXPECT_TRUE(contains(DT.children(B0->Id), B2->Id));
}

} // namespace
