//===- LivenessTest.cpp - Hand-built CFG coverage for Liveness ------------===//
//
// Pins the dataflow edge cases directly on hand-built CFGs: values live
// around a loop back-edge, uses in unreachable blocks that must not leak
// into reachable liveness, per-path liveness across a multi-return
// branch, and the phi-operand edge attribution the VM's death
// bookkeeping (and therefore every destructive-update decision) relies
// on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

Instr constant(VarId R, double V) {
  Instr I;
  I.Op = Opcode::ConstNum;
  I.Results = {R};
  I.NumRe = V;
  return I;
}

Instr binop(Opcode Op, VarId R, VarId A, VarId B) {
  Instr I;
  I.Op = Op;
  I.Results = {R};
  I.Operands = {A, B};
  return I;
}

Instr jmp(BlockId T) {
  Instr I;
  I.Op = Opcode::Jmp;
  I.Target1 = T;
  return I;
}

Instr br(VarId C, BlockId T, BlockId F) {
  Instr I;
  I.Op = Opcode::Br;
  I.Operands = {C};
  I.Target1 = T;
  I.Target2 = F;
  return I;
}

Instr ret() {
  Instr I;
  I.Op = Opcode::Ret;
  return I;
}

Instr phi(VarId R, std::vector<VarId> Ins) {
  Instr I;
  I.Op = Opcode::Phi;
  I.Results = {R};
  I.Operands = std::move(Ins);
  return I;
}

//   B0  ->  B1 (header)  ->  B3
//             ^   |
//             +-- B2 (uses n, back-edge)
TEST(LivenessHandBuilt, LiveAcrossLoopBackEdge) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId N = F.getOrCreateVar("n");
  VarId C = F.getOrCreateVar("c");
  VarId S = F.getOrCreateVar("s");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  BasicBlock *B3 = F.addBlock();
  B0->Instrs = {constant(N, 4), constant(C, 1), jmp(B1->Id)};
  B1->Instrs = {br(C, B2->Id, B3->Id)};
  B2->Instrs = {binop(Opcode::Add, S, N, N), jmp(B1->Id)};
  B3->Instrs = {ret()};
  F.recomputePreds();

  LivenessInfo Live = computeLiveness(F);
  // n's only use is in the loop body, so the back edge keeps it live into
  // the header and out of the body -- a straight-line analysis would kill
  // it after one trip.
  EXPECT_TRUE(Live.LiveIn[B1->Id].test(N));
  EXPECT_TRUE(Live.LiveOut[B2->Id].test(N));
  EXPECT_TRUE(Live.LiveOut[B0->Id].test(N));
  // But not into the entry, where it is defined.
  EXPECT_FALSE(Live.LiveIn[B0->Id].test(N));
  // s is a dead store: defined in the body, never read anywhere.
  EXPECT_FALSE(Live.LiveOut[B2->Id].test(S));
  EXPECT_FALSE(Live.LiveIn[B1->Id].test(S));
}

TEST(LivenessHandBuilt, DeadBlockUseDoesNotLeak) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId X = F.getOrCreateVar("x");
  VarId D = F.getOrCreateVar("d");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock(); // Unreachable, reads x.
  B0->Instrs = {constant(X, 1), ret()};
  B1->Instrs = {binop(Opcode::Add, D, X, X), ret()};
  F.recomputePreds();

  LivenessInfo Live = computeLiveness(F);
  // The unreachable use must not make x live anywhere reachable: a leak
  // here would manufacture interference (and block coalescing) from code
  // that can never run.
  EXPECT_FALSE(Live.LiveOut[B0->Id].test(X));
  EXPECT_FALSE(Live.LiveIn[B0->Id].test(X));
}

// B0 branches to two returning arms; each arm reads its own variable.
TEST(LivenessHandBuilt, MultiReturnPerPathLiveness) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId C = F.getOrCreateVar("c");
  VarId A = F.getOrCreateVar("a");
  VarId B = F.getOrCreateVar("b");
  VarId U = F.getOrCreateVar("u");
  VarId V = F.getOrCreateVar("v");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  B0->Instrs = {constant(C, 1), constant(A, 2), constant(B, 3),
                br(C, B1->Id, B2->Id)};
  B1->Instrs = {binop(Opcode::Add, U, A, A), ret()};
  B2->Instrs = {binop(Opcode::Add, V, B, B), ret()};
  F.recomputePreds();

  LivenessInfo Live = computeLiveness(F);
  // May-liveness unions over the two returns...
  EXPECT_TRUE(Live.LiveOut[B0->Id].test(A));
  EXPECT_TRUE(Live.LiveOut[B0->Id].test(B));
  // ...but each arm only keeps its own operand alive.
  EXPECT_TRUE(Live.LiveIn[B1->Id].test(A));
  EXPECT_FALSE(Live.LiveIn[B1->Id].test(B));
  EXPECT_TRUE(Live.LiveIn[B2->Id].test(B));
  EXPECT_FALSE(Live.LiveIn[B2->Id].test(A));
}

// A diamond joining through a phi: each phi operand is a use on the
// matching predecessor EDGE, not inside the join block.
TEST(LivenessHandBuilt, PhiUsesAttributeToEdges) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId C = F.getOrCreateVar("c");
  VarId X1 = F.getOrCreateVar("x1");
  VarId X2 = F.getOrCreateVar("x2");
  VarId X3 = F.getOrCreateVar("x3");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  BasicBlock *B3 = F.addBlock();
  B0->Instrs = {constant(C, 1), br(C, B1->Id, B2->Id)};
  B1->Instrs = {constant(X1, 2), jmp(B3->Id)};
  B2->Instrs = {constant(X2, 3), jmp(B3->Id)};
  B3->Instrs = {phi(X3, {NoVar, NoVar}), ret()};
  F.recomputePreds();
  // Phi operands pair with the join's predecessor list positionally.
  ASSERT_EQ(B3->Preds.size(), 2u);
  B3->Instrs[0].Operands[0] = B3->Preds[0] == B1->Id ? X1 : X2;
  B3->Instrs[0].Operands[1] = B3->Preds[1] == B2->Id ? X2 : X1;
  VarId FromB1 = X1, FromB2 = X2;

  LivenessInfo Live = computeLiveness(F);
  EXPECT_TRUE(Live.LiveOut[B1->Id].test(FromB1));
  EXPECT_FALSE(Live.LiveOut[B1->Id].test(FromB2));
  EXPECT_TRUE(Live.LiveOut[B2->Id].test(FromB2));
  EXPECT_FALSE(Live.LiveOut[B2->Id].test(FromB1));
  // Inside the join the phi has already consumed both: neither operand is
  // live-in (the phi is a block-head definition, not a use there).
  EXPECT_FALSE(Live.LiveIn[B3->Id].test(FromB1));
  EXPECT_FALSE(Live.LiveIn[B3->Id].test(FromB2));
}

TEST(AvailabilityHandBuilt, ParamsAndBranchDefs) {
  Module M;
  Function &F = *M.addFunction("main");
  VarId P = F.getOrCreateVar("p");
  F.Vars[P].IsParam = true;
  F.Params.push_back(P);
  VarId C = F.getOrCreateVar("c");
  VarId W = F.getOrCreateVar("w");
  BasicBlock *B0 = F.addBlock();
  BasicBlock *B1 = F.addBlock();
  BasicBlock *B2 = F.addBlock();
  BasicBlock *B3 = F.addBlock();
  B0->Instrs = {constant(C, 1), br(C, B1->Id, B2->Id)};
  B1->Instrs = {constant(W, 2), jmp(B3->Id)};
  B2->Instrs = {jmp(B3->Id)};
  B3->Instrs = {ret()};
  F.recomputePreds();

  AvailabilityInfo Avail = computeAvailability(F);
  // Parameters are defined by the call itself.
  EXPECT_TRUE(Avail.AvailIn[B0->Id].test(P));
  // May-availability: w reaches the join along the B1 path even though
  // the B2 path never defines it.
  EXPECT_TRUE(Avail.AvailIn[B3->Id].test(W));
  EXPECT_FALSE(Avail.AvailIn[B2->Id].test(W));
}

} // namespace
