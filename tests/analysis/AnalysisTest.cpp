//===- AnalysisTest.cpp - Dominators, liveness, availability --------------===//

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::unique_ptr<Module> lower(const std::string &Src) {
  Diagnostics Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();
  if (!Prog)
    return nullptr;
  auto M = lowerProgram(*Prog, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

TEST(Dominators, StraightLine) {
  auto M = lower("x = 1; y = x + 1;\n");
  Function &F = *M->Functions[0];
  DominatorTree DT(F);
  // Entry dominates everything reachable.
  for (BlockId B : F.reversePostOrder())
    EXPECT_TRUE(DT.dominates(0, B));
  EXPECT_EQ(DT.idom(0), NoBlock);
}

TEST(Dominators, IfDiamond) {
  auto M = lower("if c\nx = 1;\nelse\nx = 2;\nend\ny = x;\n");
  Function &F = *M->Functions[0];
  DominatorTree DT(F);
  // Find the join block: it has two predecessors.
  BlockId Join = NoBlock;
  for (const auto &BB : F.Blocks)
    if (BB->Preds.size() == 2)
      Join = BB->Id;
  ASSERT_NE(Join, NoBlock);
  // The join's idom must be the branching block (the entry here).
  EXPECT_EQ(DT.idom(Join), 0);
  // The then/else blocks do not dominate the join.
  for (BlockId P : F.block(Join)->Preds)
    EXPECT_FALSE(DT.dominates(P, Join) && P != Join);
}

TEST(Dominators, FrontierOfBranchArms) {
  auto M = lower("if c\nx = 1;\nelse\nx = 2;\nend\ny = x;\n");
  Function &F = *M->Functions[0];
  DominatorTree DT(F);
  BlockId Join = NoBlock;
  for (const auto &BB : F.Blocks)
    if (BB->Preds.size() == 2)
      Join = BB->Id;
  ASSERT_NE(Join, NoBlock);
  for (BlockId P : F.block(Join)->Preds) {
    auto &DF = DT.frontier(P);
    EXPECT_NE(std::find(DF.begin(), DF.end(), Join), DF.end())
        << "frontier of arm " << P << " must contain the join";
  }
}

TEST(Dominators, LoopHeaderInOwnFrontier) {
  auto M = lower("k = 0;\nwhile k < 10\nk = k + 1;\nend\n");
  Function &F = *M->Functions[0];
  DominatorTree DT(F);
  // The while header has two preds (entry and backedge) and dominates the
  // latch, so it appears in its own dominance frontier.
  BlockId Header = NoBlock;
  for (const auto &BB : F.Blocks)
    if (BB->Preds.size() == 2)
      Header = BB->Id;
  ASSERT_NE(Header, NoBlock);
  auto &DF = DT.frontier(Header);
  EXPECT_NE(std::find(DF.begin(), DF.end(), Header), DF.end());
}

TEST(Liveness, UseKeepsVariableLiveAcrossBlocks) {
  auto M = lower("x = 1;\nif c\ny = x;\nend\n");
  Function &F = *M->Functions[0];
  LivenessInfo L = computeLiveness(F);
  // Find x's VarId.
  VarId X = NoVar;
  for (unsigned V = 0; V < F.numVars(); ++V)
    if (F.var(V).Name == "x")
      X = static_cast<VarId>(V);
  ASSERT_NE(X, NoVar);
  // x is live out of the entry block (used in the then-branch).
  EXPECT_TRUE(L.LiveOut[0].test(X));
}

TEST(Liveness, DeadAfterLastUse) {
  auto M = lower("x = 1;\ny = x + 1;\ndisp(y);\n");
  Function &F = *M->Functions[0];
  LivenessInfo L = computeLiveness(F);
  VarId X = NoVar;
  for (unsigned V = 0; V < F.numVars(); ++V)
    if (F.var(V).Name == "x")
      X = static_cast<VarId>(V);
  ASSERT_NE(X, NoVar);
  // Everything is in one block here; x must not be live out of it.
  EXPECT_FALSE(L.LiveOut[0].test(X));
}

TEST(Availability, ParamsAvailableEverywhere) {
  auto M = lower("function y = f(a)\nif a > 0\ny = a;\nelse\ny = -a;\nend\n");
  Function &F = *M->Functions[0];
  AvailabilityInfo A = computeAvailability(F);
  VarId P = F.Params[0];
  for (BlockId B : F.reversePostOrder())
    EXPECT_TRUE(A.AvailIn[B].test(P) || B == 0);
  EXPECT_TRUE(A.AvailIn[0].test(P));
}

TEST(Availability, DefReachesAlongSomePath) {
  auto M = lower("if c\nx = 1;\nend\ny = 2;\n");
  Function &F = *M->Functions[0];
  AvailabilityInfo A = computeAvailability(F);
  VarId X = NoVar;
  for (unsigned V = 0; V < F.numVars(); ++V)
    if (F.var(V).Name == "x")
      X = static_cast<VarId>(V);
  ASSERT_NE(X, NoVar);
  // x is available (may-reach) at the join even though only one path
  // defines it.
  BlockId Join = NoBlock;
  for (const auto &BB : F.Blocks)
    if (BB->Preds.size() == 2)
      Join = BB->Id;
  ASSERT_NE(Join, NoBlock);
  EXPECT_TRUE(A.AvailIn[Join].test(X));
  // And not available on entry.
  EXPECT_FALSE(A.AvailIn[0].test(X));
}

} // namespace
