//===- DominatorPropertyTest.cpp - Dominators vs brute force --------------===//
//
// Property test: on random CFGs, the Cooper-Harvey-Kennedy dominator tree
// must agree with the definition of dominance computed by brute force
// ("A dominates B iff B is unreachable when A is removed"), and dominance
// frontiers must satisfy Cytron's definition.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace matcoal;

namespace {

/// Builds a random function-shaped CFG: every block gets a Jmp or Br to
/// random targets; block 0 is the entry.
std::unique_ptr<Function> randomCFG(unsigned Seed, unsigned NumBlocks) {
  std::mt19937 Rng(Seed);
  auto F = std::make_unique<Function>();
  F->Name = "cfg";
  for (unsigned I = 0; I < NumBlocks; ++I)
    F->addBlock();
  VarId C = F->getOrCreateVar("c");
  // A dummy definition for the branch condition.
  {
    Instr Def;
    Def.Op = Opcode::ConstNum;
    Def.NumRe = 1;
    Def.Results = {C};
    F->block(0)->Instrs.push_back(Def);
  }
  std::uniform_int_distribution<BlockId> Pick(0, NumBlocks - 1);
  for (unsigned I = 0; I < NumBlocks; ++I) {
    BasicBlock *BB = F->block(static_cast<BlockId>(I));
    unsigned Kind = std::uniform_int_distribution<unsigned>(0, 4)(Rng);
    Instr T;
    if (Kind == 0 || I + 1 == NumBlocks) {
      T.Op = Opcode::Ret;
    } else if (Kind <= 2) {
      T.Op = Opcode::Jmp;
      T.Target1 = Pick(Rng);
    } else {
      T.Op = Opcode::Br;
      T.Operands = {C};
      T.Target1 = Pick(Rng);
      T.Target2 = Pick(Rng);
    }
    BB->Instrs.push_back(T);
  }
  F->recomputePreds();
  return F;
}

/// Reachability from entry avoiding \p Removed (NoBlock = remove none).
std::vector<char> reachableAvoiding(const Function &F, BlockId Removed) {
  std::vector<char> Seen(F.Blocks.size(), 0);
  if (Removed == 0)
    return Seen;
  std::vector<BlockId> Work = {0};
  Seen[0] = 1;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId S : F.block(B)->successors()) {
      if (S == Removed || Seen[S])
        continue;
      Seen[S] = 1;
      Work.push_back(S);
    }
  }
  return Seen;
}

class DominatorPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DominatorPropertyTest, MatchesBruteForceDominance) {
  auto F = randomCFG(GetParam() * 2654435761u + 17, 4 + GetParam() % 9);
  DominatorTree DT(*F);
  std::vector<char> Reach = reachableAvoiding(*F, NoBlock);
  {
    // Baseline reachability (nothing removed).
    std::vector<BlockId> Work = {0};
    Reach.assign(F->Blocks.size(), 0);
    Reach[0] = 1;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId S : F->block(B)->successors())
        if (!Reach[S]) {
          Reach[S] = 1;
          Work.push_back(S);
        }
    }
  }

  for (BlockId A = 0; A < static_cast<BlockId>(F->Blocks.size()); ++A) {
    if (!Reach[A])
      continue;
    std::vector<char> Avoiding = reachableAvoiding(*F, A);
    for (BlockId B = 0; B < static_cast<BlockId>(F->Blocks.size()); ++B) {
      if (!Reach[B])
        continue;
      // A dominates B iff B is not reachable without passing through A
      // (reflexively true for A == B).
      bool Expected = A == B || !Avoiding[B];
      EXPECT_EQ(DT.dominates(A, B), Expected)
          << "blocks " << A << " -> " << B << " (seed " << GetParam()
          << ")";
    }
  }
}

TEST_P(DominatorPropertyTest, FrontiersMatchDefinition) {
  auto F = randomCFG(GetParam() * 40503u + 101, 4 + GetParam() % 9);
  DominatorTree DT(*F);
  // DF(A) = { B : A dominates some pred of B, A does not strictly
  // dominate B }.
  for (BlockId A : F->reversePostOrder()) {
    std::vector<BlockId> Expected;
    for (BlockId B : F->reversePostOrder()) {
      bool DomPred = false;
      for (BlockId P : F->block(B)->Preds)
        if (DT.isReachable(P) && DT.dominates(A, P))
          DomPred = true;
      bool StrictlyDominates = A != B && DT.dominates(A, B);
      if (DomPred && !StrictlyDominates)
        Expected.push_back(B);
    }
    std::vector<BlockId> Actual = DT.frontier(A);
    std::sort(Actual.begin(), Actual.end());
    std::sort(Expected.begin(), Expected.end());
    EXPECT_EQ(Actual, Expected) << "frontier of block " << A << " (seed "
                                << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorPropertyTest,
                         ::testing::Range(0u, 25u));

} // namespace
