//===- AliasAnalysisTest.cpp - May-alias, escape, last-use unit tests -----===//
//
// Drives the interprocedural alias/escape/last-use analysis over
// hand-built IR where every expected fact is decidable by eye: copies
// alias, fresh values do not, callee summaries carry output-aliases-param
// and param-escapes facts back to call sites, and the last-use
// bookkeeping matches the VM's death discipline.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "support/SymExpr.h"
#include "typeinf/TypeInference.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

Instr constant(VarId R, double V) {
  Instr I;
  I.Op = Opcode::ConstNum;
  I.Results = {R};
  I.NumRe = V;
  return I;
}

Instr copy(VarId R, VarId X) {
  Instr I;
  I.Op = Opcode::Copy;
  I.Results = {R};
  I.Operands = {X};
  return I;
}

Instr add(VarId R, VarId A, VarId B) {
  Instr I;
  I.Op = Opcode::Add;
  I.Results = {R};
  I.Operands = {A, B};
  return I;
}

Instr call(const std::string &Callee, VarId R, VarId Arg) {
  Instr I;
  I.Op = Opcode::Call;
  I.StrVal = Callee;
  I.Results = {R};
  I.Operands = {Arg};
  return I;
}

Instr ret() {
  Instr I;
  I.Op = Opcode::Ret;
  return I;
}

/// main: a = 1; b = a; c = 2; d = id(c); e = b + d; ret
/// id(p) -> r: r = p; ret
struct TwoFunctionFixture {
  Module M;
  SymExprContext Ctx;
  Diagnostics Diags;
  TypeInference TI{M, Ctx, Diags};
  Function *Main = nullptr, *Id = nullptr;
  VarId A, B, C, D, E, P, R;

  TwoFunctionFixture() {
    Main = M.addFunction("main");
    A = Main->getOrCreateVar("a");
    B = Main->getOrCreateVar("b");
    C = Main->getOrCreateVar("c");
    D = Main->getOrCreateVar("d");
    E = Main->getOrCreateVar("e");
    BasicBlock *MB = Main->addBlock();
    MB->Instrs = {constant(A, 1), copy(B, A),        constant(C, 2),
                  call("id", D, C), add(E, B, D), ret()};
    Main->recomputePreds();

    Id = M.addFunction("id");
    P = Id->getOrCreateVar("p");
    Id->Vars[P].IsParam = true;
    Id->Params.push_back(P);
    R = Id->getOrCreateVar("r");
    Id->Vars[R].IsOutput = true;
    Id->Outputs.push_back(R);
    BasicBlock *IB = Id->addBlock();
    IB->Instrs = {copy(R, P), ret()};
    Id->recomputePreds();
  }
};

TEST(AliasAnalysisTest, CopiesAliasFreshValuesDoNot) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  EXPECT_TRUE(AA.mayAlias(*Fx.Main, Fx.A, Fx.A));
  EXPECT_TRUE(AA.mayAlias(*Fx.Main, Fx.A, Fx.B));
  EXPECT_TRUE(AA.mayAlias(*Fx.Main, Fx.B, Fx.A));
  EXPECT_FALSE(AA.mayAlias(*Fx.Main, Fx.A, Fx.C));
  EXPECT_FALSE(AA.mayAlias(*Fx.Main, Fx.B, Fx.C));
  // e is a fresh arithmetic result: it aliases neither operand.
  EXPECT_FALSE(AA.mayAlias(*Fx.Main, Fx.E, Fx.B));
}

TEST(AliasAnalysisTest, CalleeSummaryFlowsToCallSite) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  // id returns its parameter: summary says output 0 may alias param 0,
  // and the parameter escapes (it flows into the output).
  EXPECT_TRUE(AA.outputMayAliasParam(*Fx.Id, 0, 0));
  EXPECT_TRUE(AA.paramEscapes(*Fx.Id, 0));
  // Applied at the call site: d may alias the argument c, so c escapes
  // through the call, while a stays private to main.
  EXPECT_TRUE(AA.mayAlias(*Fx.Main, Fx.D, Fx.C));
  EXPECT_FALSE(AA.mayAlias(*Fx.Main, Fx.D, Fx.A));
  EXPECT_TRUE(AA.escapes(*Fx.Main, Fx.C));
  EXPECT_FALSE(AA.escapes(*Fx.Main, Fx.A));
}

TEST(AliasAnalysisTest, EscapeClosesOverCopiesIntoOutputs) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  EXPECT_TRUE(AA.escapes(*Fx.Id, Fx.R));
  EXPECT_TRUE(AA.escapes(*Fx.Id, Fx.P));
}

TEST(AliasAnalysisTest, LastUseMatchesDeathBookkeeping) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  const BlockId Entry = 0;
  // Instruction indices in main's entry block (see the fixture comment).
  const unsigned CopyIdx = 1, CallIdx = 3, AddIdx = 4;
  // a's last use is the copy; b's and d's the add.
  EXPECT_TRUE(AA.lastUseAt(*Fx.Main, Entry, CopyIdx, Fx.A));
  EXPECT_FALSE(AA.lastUseAt(*Fx.Main, Entry, AddIdx, Fx.A));
  EXPECT_TRUE(AA.lastUseAt(*Fx.Main, Entry, AddIdx, Fx.B));
  EXPECT_TRUE(AA.lastUseAt(*Fx.Main, Entry, AddIdx, Fx.D));
  EXPECT_FALSE(AA.lastUseAt(*Fx.Main, Entry, CallIdx, Fx.B));
  // deathsAt reports the same facts as a set.
  const std::vector<VarId> &AtAdd = AA.deathsAt(*Fx.Main, Entry, AddIdx);
  EXPECT_NE(std::find(AtAdd.begin(), AtAdd.end(), Fx.B), AtAdd.end());
  EXPECT_NE(std::find(AtAdd.begin(), AtAdd.end(), Fx.D), AtAdd.end());
}

TEST(AliasAnalysisTest, DefUseCountsFollowTheOracleConvention) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  // Params carry an implicit definition; outputs an implicit use.
  EXPECT_EQ(AA.defCount(*Fx.Id, Fx.P), 1u);
  EXPECT_EQ(AA.useCount(*Fx.Id, Fx.P), 1u);
  EXPECT_EQ(AA.defCount(*Fx.Id, Fx.R), 1u);
  EXPECT_EQ(AA.useCount(*Fx.Id, Fx.R), 1u);
  EXPECT_EQ(AA.defCount(*Fx.Main, Fx.B), 1u);
  EXPECT_EQ(AA.useCount(*Fx.Main, Fx.B), 1u);
  EXPECT_EQ(AA.useCount(*Fx.Main, Fx.E), 0u);
}

TEST(AliasAnalysisTest, RefreshRecomputesLocalFacts) {
  TwoFunctionFixture Fx;
  AliasAnalysis AA(Fx.M, Fx.TI);
  const BlockId Entry = 0;
  EXPECT_TRUE(AA.lastUseAt(*Fx.Main, Entry, 4, Fx.B));
  // Rewrite main the way SSA inversion would: append a late read of b.
  BasicBlock *MB = Fx.Main->entry();
  Instr Late = add(Fx.Main->getOrCreateVar("z"), Fx.B, Fx.B);
  MB->Instrs.insert(MB->Instrs.end() - 1, Late);
  AA.refresh(*Fx.Main);
  // b now dies at the new instruction, not at the old add.
  EXPECT_FALSE(AA.lastUseAt(*Fx.Main, Entry, 4, Fx.B));
  EXPECT_TRUE(AA.lastUseAt(*Fx.Main, Entry, 5, Fx.B));
}

} // namespace
