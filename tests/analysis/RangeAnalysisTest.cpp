//===- RangeAnalysisTest.cpp - Unit tests for the range/shape analysis ----===//
//
// Exercises the interval lattice over whole compiled programs: constant
// propagation, branch narrowing, loop widening, shape transfer for the
// array builtins, interprocedural summaries, and the storage-facing
// queries (numelBound / staticSizeBytes / provablyScalar /
// subscriptInBounds) that GCTD and the C emitter consume.
//
//===----------------------------------------------------------------------===//

#include "analysis/RangeAnalysis.h"

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

struct Compiled {
  std::unique_ptr<CompiledProgram> P;
  const Function *F = nullptr;
  const RangeAnalysis *RA = nullptr;
};

Compiled analyze(const std::string &Src, const std::string &Fn = "main") {
  Diagnostics Diags;
  Compiled C;
  C.P = compileSource(Src, Diags);
  EXPECT_NE(C.P, nullptr) << Diags.str();
  if (!C.P)
    return C;
  C.F = &C.P->function(Fn);
  C.RA = C.P->ranges();
  EXPECT_NE(C.RA, nullptr);
  return C;
}

/// The last SSA version of source variable \p Base (its value at exit).
VarId lastVersion(const Function &F, const std::string &Base) {
  VarId Best = NoVar;
  int BestVersion = -1;
  for (VarId V = 0; static_cast<size_t>(V) < F.numVars(); ++V) {
    const VarInfo &Info = F.var(V);
    if (!Info.IsTemp && Info.Base == Base && Info.Version > BestVersion) {
      Best = V;
      BestVersion = Info.Version;
    }
  }
  EXPECT_NE(Best, NoVar) << "no variable named " << Base;
  return Best;
}

TEST(RangeAnalysis, ConstantsPropagateThroughArithmetic) {
  Compiled C = analyze("x = 3;\ny = x * 2 + 1;\ndisp(y);\n");
  ASSERT_TRUE(C.RA);
  const VarRange &R = C.RA->rangeOf(*C.F, lastVersion(*C.F, "y"));
  ASSERT_TRUE(R.Defined);
  EXPECT_EQ(R.Val, Interval::point(7));
  EXPECT_TRUE(C.RA->provablyScalar(*C.F, lastVersion(*C.F, "y")));
}

TEST(RangeAnalysis, RandIsBoundedUnitInterval) {
  Compiled C = analyze("x = rand();\ndisp(x);\n");
  ASSERT_TRUE(C.RA);
  const VarRange &R = C.RA->rangeOf(*C.F, lastVersion(*C.F, "x"));
  ASSERT_TRUE(R.Defined);
  EXPECT_GE(R.Val.Lo, 0);
  EXPECT_LE(R.Val.Hi, 1);
}

TEST(RangeAnalysis, LoopCounterWidensButKeepsExitBound) {
  // i is 1..11 at exit: the widening must not lose the <= bound that the
  // loop condition re-narrows on every back edge.
  Compiled C = analyze("i = 1;\nwhile i <= 10\ni = i + 1;\nend\ndisp(i);\n");
  ASSERT_TRUE(C.RA);
  const VarRange &R = C.RA->rangeOf(*C.F, lastVersion(*C.F, "i"));
  ASSERT_TRUE(R.Defined);
  EXPECT_GE(R.Val.Lo, 1);
  EXPECT_TRUE(R.Val.boundedAbove());
  EXPECT_LE(R.Val.Hi, 11);
}

TEST(RangeAnalysis, UnboundedGrowthWidensToInfinity) {
  // No loop bound exists, so widening must race the value to +inf
  // rather than iterating forever.
  Compiled C = analyze(
      "x = 1;\nwhile rand() < 0.5\nx = x * 2;\nend\ndisp(x);\n");
  ASSERT_TRUE(C.RA);
  const VarRange &R = C.RA->rangeOf(*C.F, lastVersion(*C.F, "x"));
  ASSERT_TRUE(R.Defined);
  EXPECT_FALSE(R.Val.boundedAbove());
  EXPECT_GE(R.Val.Lo, 1);
}

TEST(RangeAnalysis, ZerosGivesExactDims) {
  Compiled C = analyze("a = zeros(3, 5);\ndisp(a);\n");
  ASSERT_TRUE(C.RA);
  VarId A = lastVersion(*C.F, "a");
  const VarRange &R = C.RA->rangeOf(*C.F, A);
  ASSERT_TRUE(R.Defined);
  ASSERT_EQ(R.Dims.size(), 2u);
  EXPECT_EQ(R.Dims[0], Interval::point(3));
  EXPECT_EQ(R.Dims[1], Interval::point(5));
  EXPECT_EQ(C.RA->numelBound(*C.F, A), Interval::point(15));
  EXPECT_EQ(C.RA->staticSizeBytes(*C.F, A), 15 * 8);
}

TEST(RangeAnalysis, BoundedSymbolicExtentBoundsStorage) {
  // n is in [2, 10], so rand(n, n) holds at most 100 doubles even
  // though its shape is not a compile-time constant.
  Compiled C = analyze(
      "n = round(rand() * 8) + 2;\na = rand(n, n);\ndisp(a);\n");
  ASSERT_TRUE(C.RA);
  VarId A = lastVersion(*C.F, "a");
  Interval N = C.RA->numelBound(*C.F, A);
  EXPECT_TRUE(N.boundedAbove());
  EXPECT_LE(N.Hi, 100);
  std::int64_t Bytes = C.RA->staticSizeBytes(*C.F, A);
  EXPECT_GT(Bytes, 0);
  EXPECT_LE(Bytes, 100 * 8);
}

TEST(RangeAnalysis, UnboundedExtentRefusesStaticSize) {
  Compiled C = analyze("n = 2;\nwhile rand() < 0.5\nn = n * 2;\nend\n"
                       "a = rand(n, n);\ndisp(a);\n");
  ASSERT_TRUE(C.RA);
  VarId A = lastVersion(*C.F, "a");
  EXPECT_FALSE(C.RA->numelBound(*C.F, A).boundedAbove());
  EXPECT_EQ(C.RA->staticSizeBytes(*C.F, A), -1);
}

TEST(RangeAnalysis, PromotionRespectsCapBytes) {
  // A constant shape always reports its exact size (GCTD's existing
  // policy decides placement), but a merely *bounded* shape past the
  // promotion cap must be refused so planner and verifier agree.
  Compiled C = analyze("a = zeros(1000, 1000);\ndisp(a);\n");
  ASSERT_TRUE(C.RA);
  EXPECT_EQ(C.RA->staticSizeBytes(*C.F, lastVersion(*C.F, "a")),
            1000 * 1000 * 8);
  Compiled C2 = analyze(
      "n = round(rand() * 999) + 1;\na = zeros(n, 1000);\ndisp(a);\n");
  ASSERT_TRUE(C2.RA);
  VarId A = lastVersion(*C2.F, "a");
  EXPECT_TRUE(C2.RA->numelBound(*C2.F, A).boundedAbove());
  EXPECT_EQ(C2.RA->staticSizeBytes(*C2.F, A), -1);
}

TEST(RangeAnalysis, BranchConditionNarrowsValue) {
  // Inside the true branch of x < 5, valueAt sees x below 5 even
  // though the function-wide range spans [0, 100].
  Compiled C = analyze("x = round(rand() * 100);\nif x < 5\ny = x + 1;\n"
                       "disp(y);\nend\ndisp(x);\n");
  ASSERT_TRUE(C.RA);
  VarId X = NoVar;
  BlockId TrueB = NoBlock;
  // The add defining 'y' sits in the guarded block; its x operand is
  // the narrowed value.
  for (const auto &BB : C.F->Blocks)
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Add || I.Results.empty() ||
          C.F->var(I.Results[0]).Base != "y")
        continue;
      for (VarId Op : I.Operands)
        if (C.F->var(Op).Base == "x") {
          X = Op;
          TrueB = BB->Id;
        }
    }
  ASSERT_NE(X, NoVar) << "no add into y found";
  Interval In = C.RA->valueAt(*C.F, TrueB, X);
  EXPECT_TRUE(In.boundedAbove());
  EXPECT_LE(In.Hi, 5);
  const VarRange &Whole = C.RA->rangeOf(*C.F, X);
  ASSERT_TRUE(Whole.Defined);
  EXPECT_GT(Whole.Val.Hi, 5);
}

TEST(RangeAnalysis, SubscriptProvablyInBounds) {
  Compiled C = analyze("a = zeros(4, 4);\ni = 1;\nwhile i <= 4\n"
                       "a(i, 2) = i;\ni = i + 1;\nend\ndisp(a);\n");
  ASSERT_TRUE(C.RA);
  // Find the subsasgn and check both subscripts prove in bounds.
  bool Checked = false;
  for (const auto &BB : C.F->Blocks)
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Subsasgn || I.Operands.size() != 4)
        continue;
      EXPECT_TRUE(C.RA->subscriptInBounds(*C.F, BB->Id, I.Operands[0],
                                          I.Operands[2], 0, 2));
      EXPECT_TRUE(C.RA->subscriptInBounds(*C.F, BB->Id, I.Operands[0],
                                          I.Operands[3], 1, 2));
      Checked = true;
    }
  EXPECT_TRUE(Checked) << "no rank-2 subsasgn found";
}

TEST(RangeAnalysis, SubscriptNotProvableWhenRangeExceedsExtent) {
  Compiled C = analyze("a = zeros(4, 4);\ni = round(rand() * 9) + 1;\n"
                       "x = a(i);\ndisp(x);\n");
  ASSERT_TRUE(C.RA);
  bool Checked = false;
  for (const auto &BB : C.F->Blocks)
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Subsref || I.Operands.size() != 2)
        continue;
      // i can be 10 > 16? No: i in [1, 10] fits 16 elements -- make the
      // assertion about what is actually provable: numel(a) = 16, so a
      // 1..10 subscript IS in bounds; the unprovable case is below.
      Checked = true;
    }
  EXPECT_TRUE(Checked);
  // Genuinely unprovable: subscript bound exceeds the array's numel.
  Compiled C2 = analyze("a = zeros(2, 2);\ni = round(rand() * 9) + 1;\n"
                        "x = a(i);\ndisp(x);\n");
  ASSERT_TRUE(C2.RA);
  for (const auto &BB : C2.F->Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Subsref && I.Operands.size() == 2) {
        EXPECT_FALSE(C2.RA->subscriptInBounds(*C2.F, BB->Id, I.Operands[0],
                                              I.Operands[1], 0, 1));
      }
}

TEST(RangeAnalysis, InterproceduralParamSummary) {
  // The callee only ever sees n in [2, 10]: its result's numel bound
  // must reflect the caller's argument range.
  Compiled C = analyze("function main\nn = round(rand() * 8) + 2;\n"
                       "x = work(n);\ndisp(x);\n\n"
                       "function c = work(n)\nc = rand(n, n) + 1;\n",
                       "work");
  ASSERT_TRUE(C.RA);
  VarId Out = lastVersion(*C.F, "c");
  Interval N = C.RA->numelBound(*C.F, Out);
  EXPECT_TRUE(N.boundedAbove());
  EXPECT_LE(N.Hi, 100);
}

TEST(RangeAnalysis, ColonSubscriptNeverCountsAsInBounds) {
  // ':' markers carry a scalar-looking type; asking whether one is "in
  // bounds" as a scalar subscript must answer no, never crash.
  Compiled C = analyze("a = zeros(3, 3);\nb = a(:);\ndisp(b);\n");
  ASSERT_TRUE(C.RA);
  for (const auto &BB : C.F->Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Subsref && I.Operands.size() == 2) {
        EXPECT_FALSE(C.RA->subscriptInBounds(*C.F, BB->Id, I.Operands[0],
                                             I.Operands[1], 0, 1));
      }
}

TEST(RangeAnalysis, IntervalLatticeLaws) {
  Interval A = Interval::of(1, 5), B = Interval::of(3, 9);
  EXPECT_EQ(A.join(B), Interval::of(1, 9));
  EXPECT_EQ(A.meet(B), Interval::of(3, 5));
  EXPECT_EQ(A.join(Interval::bottom()), A);
  EXPECT_TRUE(A.meet(Interval::bottom()).isBottom());
  EXPECT_EQ(A.meet(Interval::top()), A);
  EXPECT_EQ(A.join(Interval::top()), Interval::top());
  // Disjoint meets collapse to bottom.
  EXPECT_TRUE(Interval::of(1, 2).meet(Interval::of(5, 6)).isBottom());
}

} // namespace
