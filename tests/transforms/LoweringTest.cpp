//===- LoweringTest.cpp - AST -> IR lowering tests ------------------------===//

#include "transforms/Lowering.h"

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::unique_ptr<Module> lower(const std::string &Src) {
  Diagnostics Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();
  if (!Prog)
    return nullptr;
  auto M = lowerProgram(*Prog, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

/// Counts instructions with the given opcode across the function.
unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      N += I.Op == Op;
  return N;
}

const Instr *findOp(const Function &F, Opcode Op) {
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Op)
        return &I;
  return nullptr;
}

TEST(Lowering, SOFormDecomposesExpressions) {
  // d = b + c * 2 must become two SO statements via a temporary.
  auto M = lower("d = b + c * 2;\nb = 1; c = 2;\n");
  Function &F = *M->Functions[0];
  const Instr *Add = findOp(F, Opcode::Add);
  ASSERT_NE(Add, nullptr);
  const Instr *Mul = findOp(F, Opcode::MatMul);
  ASSERT_NE(Mul, nullptr);
  // The multiply feeds the add through a temp.
  EXPECT_TRUE(F.var(Mul->result()).IsTemp);
  EXPECT_EQ(Add->Operands[1], Mul->result());
  // The add defines d directly (retargeting avoided the extra copy).
  EXPECT_EQ(F.var(Add->result()).Name, "d");
}

TEST(Lowering, IndexedAssignBecomesSubsasgn) {
  auto M = lower("a = zeros(3, 3);\na(1, 2) = 5;\n");
  Function &F = *M->Functions[0];
  const Instr *SA = findOp(F, Opcode::Subsasgn);
  ASSERT_NE(SA, nullptr);
  // subsasgn(a, rhs, i1, i2): result and first operand are both 'a'.
  EXPECT_EQ(F.var(SA->result()).Name, "a");
  EXPECT_EQ(SA->Operands.size(), 4u);
  EXPECT_EQ(SA->Operands[0], SA->result());
}

TEST(Lowering, RIndexBecomesSubsref) {
  auto M = lower("a = rand(2, 2);\nc = a(1);\n");
  Function &F = *M->Functions[0];
  const Instr *SR = findOp(F, Opcode::Subsref);
  ASSERT_NE(SR, nullptr);
  EXPECT_EQ(SR->Operands.size(), 2u);
  EXPECT_EQ(F.var(SR->result()).Name, "c");
}

TEST(Lowering, UnknownNameBecomesBuiltinCall) {
  auto M = lower("x = zeros(2, 3);\n");
  Function &F = *M->Functions[0];
  const Instr *B = findOp(F, Opcode::Builtin);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->StrVal, "zeros");
  EXPECT_EQ(B->Operands.size(), 2u);
}

TEST(Lowering, KnownFunctionBecomesCall) {
  auto M = lower("function main\nx = helper(3);\n\nfunction y = helper(a)\n"
                 "y = a + 1;\n");
  Function &F = *M->Functions[0];
  const Instr *C = findOp(F, Opcode::Call);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->StrVal, "helper");
}

TEST(Lowering, VariableShadowsBuiltin) {
  // 'size' is assigned, so size(2) is an index, not a call.
  auto M = lower("size = [4, 5, 6];\nx = size(2);\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Subsref), 1u);
  EXPECT_EQ(countOps(F, Opcode::Builtin), 0u);
}

const Instr *findBuiltin(const Function &F, const std::string &Name) {
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Builtin && I.StrVal == Name)
        return &I;
  return nullptr;
}

TEST(Lowering, EndBecomesSizeQuery) {
  auto M = lower("a = rand(4, 4);\nx = a(end, 1);\n");
  Function &F = *M->Functions[0];
  EXPECT_NE(findBuiltin(F, "size"), nullptr);
  EXPECT_EQ(findBuiltin(F, "numel"), nullptr);
}

TEST(Lowering, EndInVectorContextUsesNumel) {
  auto M = lower("a = rand(1, 4);\nx = a(end);\n");
  Function &F = *M->Functions[0];
  EXPECT_NE(findBuiltin(F, "numel"), nullptr);
  EXPECT_EQ(findBuiltin(F, "size"), nullptr);
}

TEST(Lowering, ColonSubscript) {
  auto M = lower("a = rand(3, 3);\nc = a(:, 2);\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::ConstColon), 1u);
}

TEST(Lowering, MatrixLiteral) {
  auto M = lower("m = [1, 2; 3, 4];\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::HorzCat), 2u);
  EXPECT_EQ(countOps(F, Opcode::VertCat), 1u);
}

TEST(Lowering, EmptyMatrixLiteral) {
  auto M = lower("m = [];\n");
  Function &F = *M->Functions[0];
  const Instr *VC = findOp(F, Opcode::VertCat);
  ASSERT_NE(VC, nullptr);
  EXPECT_TRUE(VC->Operands.empty());
}

TEST(Lowering, WhileLoopShape) {
  auto M = lower("k = 0;\nwhile k < 3\nk = k + 1;\nend\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Br), 1u);
  EXPECT_GE(countOps(F, Opcode::Jmp), 2u);
}

TEST(Lowering, ForLoopLowersToCounter) {
  auto M = lower("s = 0;\nfor i = 1:10\ns = s + i;\nend\n");
  Function &F = *M->Functions[0];
  // Le comparison in the header, Add for body and increment.
  EXPECT_EQ(countOps(F, Opcode::Le), 1u);
  EXPECT_EQ(countOps(F, Opcode::Add), 2u);
}

TEST(Lowering, ForLoopNegativeConstantStepUsesGe) {
  auto M = lower("s = 0;\nfor i = 10:-1:1\ns = s + i;\nend\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Ge), 1u);
}

TEST(Lowering, ForLoopDynamicStepUsesForcond) {
  auto M = lower("st = 2;\ns = 0;\nfor i = 1:st:9\ns = s + i;\nend\n");
  Function &F = *M->Functions[0];
  const Instr *B = findOp(F, Opcode::Builtin);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->StrVal, "__forcond");
}

TEST(Lowering, ShortCircuitCreatesBranches) {
  auto M = lower("a = 1; b = 2;\nif a > 0 && b > 0\nc = 1;\nend\n");
  Function &F = *M->Functions[0];
  EXPECT_GE(countOps(F, Opcode::Br), 2u);
}

TEST(Lowering, BreakOutsideLoopIsError) {
  Diagnostics Diags;
  auto Prog = parseProgram("break;\n", Diags);
  ASSERT_NE(Prog, nullptr);
  auto M = lowerProgram(*Prog, Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lowering, RetCarriesOutputs) {
  auto M = lower("function [a, b] = f(x)\na = x; b = x + 1;\n");
  Function &F = *M->Functions[0];
  const Instr *Ret = findOp(F, Opcode::Ret);
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->Operands.size(), 2u);
}

TEST(Lowering, DisplayEmittedWithoutSemicolon) {
  auto M = lower("x = 41\n");
  Function &F = *M->Functions[0];
  const Instr *D = findOp(F, Opcode::Display);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->StrVal, "x");
}

TEST(Lowering, MultiAssignSize) {
  auto M = lower("a = rand(2, 3);\n[m, n] = size(a);\n");
  Function &F = *M->Functions[0];
  const Instr *B = nullptr;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Builtin && I.StrVal == "size")
        B = &I;
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Results.size(), 2u);
}

TEST(Lowering, AllBlocksTerminated) {
  auto M = lower("if a\nx = 1;\nelseif b\nx = 2;\nelse\nx = 3;\nend\n"
                 "a = 1; b = 2;\nwhile x > 0\nx = x - 1;\nif x == 2\n"
                 "break;\nend\nend\n");
  Function &F = *M->Functions[0];
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
}

} // namespace
