//===- SSATest.cpp - SSA construction/inversion tests ---------------------===//

#include "transforms/SSA.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>
#include <set>

using namespace matcoal;

namespace {

std::unique_ptr<Module> lowerToSSA(const std::string &Src,
                                   Diagnostics *OutDiags = nullptr) {
  Diagnostics Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();
  if (!Prog)
    return nullptr;
  auto M = lowerProgram(*Prog, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  if (!M)
    return nullptr;
  for (auto &F : M->Functions)
    EXPECT_TRUE(buildSSA(*F, Diags)) << Diags.str();
  if (OutDiags)
    *OutDiags = Diags;
  return M;
}

unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      N += I.Op == Op;
  return N;
}

/// Each variable must be defined at most once in SSA form.
bool hasSingleAssignments(const Function &F) {
  std::set<VarId> Defined;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        if (!Defined.insert(R).second)
          return false;
  return true;
}

TEST(SSA, StraightLineRenaming) {
  auto M = lowerToSSA("x = 1;\nx = x + 1;\ndisp(x);\n");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(hasSingleAssignments(F));
  EXPECT_EQ(countOps(F, Opcode::Phi), 0u);
}

TEST(SSA, DiamondGetsPhi) {
  auto M = lowerToSSA("c = 1;\nif c\nx = 1;\nelse\nx = 2;\nend\ndisp(x);\n");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(hasSingleAssignments(F));
  EXPECT_GE(countOps(F, Opcode::Phi), 1u);
}

TEST(SSA, PrunedNoPhiForDeadVariable) {
  // x is never used after the if; pruned SSA inserts no phi for it.
  auto M = lowerToSSA("c = 1;\nif c\nx = 1;\nelse\nx = 2;\nend\ny = 3;\n"
                      "disp(y);\n");
  Function &F = *M->Functions[0];
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Phi) {
        EXPECT_NE(F.var(I.result()).Base, "x");
      }
}

TEST(SSA, LoopGetsHeaderPhi) {
  auto M = lowerToSSA("k = 0;\nwhile k < 10\nk = k + 1;\nend\ndisp(k);\n");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(hasSingleAssignments(F));
  unsigned KPhis = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Phi && F.var(I.result()).Base == "k")
        ++KPhis;
  EXPECT_GE(KPhis, 1u);
}

TEST(SSA, PhiOperandsMatchPreds) {
  auto M = lowerToSSA("k = 0;\nwhile k < 10\nk = k + 2;\nend\ndisp(k);\n");
  Function &F = *M->Functions[0];
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
}

TEST(SSA, ParamsBecomeVersionZero) {
  auto M = lowerToSSA("function y = f(a)\ny = a + 1;\n");
  Function &F = *M->Functions[0];
  ASSERT_EQ(F.Params.size(), 1u);
  EXPECT_EQ(F.var(F.Params[0]).Version, 0);
  EXPECT_EQ(F.var(F.Params[0]).Base, "a");
}

TEST(SSA, MaybeUndefinedGetsEntryInit) {
  Diagnostics Diags;
  auto M = lowerToSSA("if c\nx = 1;\nend\ny = x;\ndisp(y);\nc = 1;\n",
                      &Diags);
  Function &F = *M->Functions[0];
  // An empty-array init for x must exist at the entry.
  bool FoundInit = false;
  for (const Instr &I : F.entry()->Instrs)
    if (I.Op == Opcode::VertCat && I.Operands.empty() &&
        F.var(I.result()).Base == "x")
      FoundInit = true;
  EXPECT_TRUE(FoundInit);
}

TEST(SSA, SubsasgnGrowthFromNothing) {
  // v(k) = k with v never initialized: MATLAB grows from empty.
  auto M = lowerToSSA("for k = 1:3\nv(k) = k;\nend\ndisp(v);\n");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(hasSingleAssignments(F));
}

TEST(SSA, InversionRemovesPhis) {
  auto M = lowerToSSA("k = 0;\nwhile k < 10\nk = k + 1;\nend\ndisp(k);\n");
  Function &F = *M->Functions[0];
  ASSERT_GE(countOps(F, Opcode::Phi), 1u);
  invertSSA(F);
  EXPECT_EQ(countOps(F, Opcode::Phi), 0u);
  F.recomputePreds();
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
}

TEST(SSA, InversionInsertsCopiesOnEdges) {
  auto M = lowerToSSA("c = 1;\nif c\nx = 1;\nelse\nx = 2;\nend\ndisp(x);\n");
  Function &F = *M->Functions[0];
  unsigned CopiesBefore = countOps(F, Opcode::Copy);
  invertSSA(F);
  EXPECT_GT(countOps(F, Opcode::Copy), CopiesBefore);
}

TEST(SSA, InversionSplitsCriticalEdges) {
  // Build a CFG with a critical edge: a conditional branch straight into a
  // loop header that has phis. while-in-if shapes produce this.
  auto M = lowerToSSA("c = 1;\nk = 0;\nif c\nk = 5;\nend\n"
                      "while k < 10\nk = k + 1;\nend\ndisp(k);\n");
  Function &F = *M->Functions[0];
  invertSSA(F);
  F.recomputePreds();
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
  // No block may both end in a conditional branch and feed a block where
  // copies landed for a phi -- i.e. verify no lost-copy hazard: every
  // inserted copy sits in a block whose terminator is an unconditional
  // jump or that has a single successor.
  for (const auto &BB : F.Blocks) {
    bool HasCopy = false;
    for (const Instr &I : BB->Instrs)
      HasCopy |= I.Op == Opcode::Copy;
    (void)HasCopy; // Structural check: verified function suffices.
  }
}

TEST(SSA, RemoveUnreachablePreservesPhiOrder) {
  auto M = lowerToSSA("k = 0;\nwhile k < 3\nk = k + 1;\nend\ndisp(k);\n");
  Function &F = *M->Functions[0];
  size_t Before = F.Blocks.size();
  removeUnreachableBlocks(F);
  Diagnostics Diags;
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
  EXPECT_LE(F.Blocks.size(), Before);
}

} // namespace
