//===- PassesTest.cpp - Cleanup pass tests --------------------------------===//

#include "transforms/Passes.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/SSA.h"

#include <gtest/gtest.h>

using namespace matcoal;

namespace {

std::unique_ptr<Module> pipeline(const std::string &Src) {
  Diagnostics Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_NE(Prog, nullptr) << Diags.str();
  auto M = lowerProgram(*Prog, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  for (auto &F : M->Functions) {
    EXPECT_TRUE(buildSSA(*F, Diags)) << Diags.str();
    runCleanupPipeline(*F);
    EXPECT_TRUE(verifyFunction(*F, Diags)) << Diags.str();
  }
  return M;
}

unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      N += I.Op == Op;
  return N;
}

unsigned countInstrs(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    N += static_cast<unsigned>(BB->Instrs.size());
  return N;
}

TEST(Passes, CopyPropagationEliminatesChains) {
  auto M = pipeline("a = 1;\nb = a;\nc = b;\ndisp(c);\n");
  Function &F = *M->Functions[0];
  // After copyprop + DCE, the copies are gone; disp reads the constant.
  EXPECT_EQ(countOps(F, Opcode::Copy), 0u);
}

TEST(Passes, ConstantFoldingScalars) {
  auto M = pipeline("x = 2 + 3 * 4;\ndisp(x);\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Add), 0u);
  EXPECT_EQ(countOps(F, Opcode::MatMul), 0u);
  // One surviving constant: 14.
  const Instr *C = nullptr;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::ConstNum)
        C = &I;
  ASSERT_NE(C, nullptr);
  EXPECT_DOUBLE_EQ(C->NumRe, 14.0);
}

TEST(Passes, ConstantFoldingBuiltins) {
  auto M = pipeline("x = floor(3.7) + max(1, 2);\ndisp(x);\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Builtin), 1u); // Only disp remains.
  const Instr *C = nullptr;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::ConstNum)
        C = &I;
  ASSERT_NE(C, nullptr);
  EXPECT_DOUBLE_EQ(C->NumRe, 5.0);
}

TEST(Passes, BranchFoldingWhileOne) {
  auto M = pipeline("k = 0;\nwhile 1\nk = k + 1;\nif k > 3\nbreak;\nend\n"
                    "end\ndisp(k);\n");
  Function &F = *M->Functions[0];
  // The `while 1` header branch must be folded to a jump; the only Br
  // left is the k > 3 test.
  EXPECT_EQ(countOps(F, Opcode::Br), 1u);
}

TEST(Passes, DeadBranchBodyRemoved) {
  auto M = pipeline("if 0\nx = rand(100, 100);\ndisp(x);\nend\ny = 1;\n"
                    "disp(y);\n");
  Function &F = *M->Functions[0];
  // rand and its disp are unreachable and removed entirely.
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Builtin) {
        EXPECT_NE(I.StrVal, "rand");
      }
  EXPECT_EQ(countOps(F, Opcode::Br), 0u);
}

TEST(Passes, DCERemovesUnusedPureOps) {
  auto M = pipeline("x = 1 + 2;\ny = 5;\ndisp(y);\n");
  Function &F = *M->Functions[0];
  // x is dead.
  unsigned Consts = countOps(F, Opcode::ConstNum);
  EXPECT_EQ(Consts, 1u);
}

TEST(Passes, DCEKeepsImpureBuiltins) {
  auto M = pipeline("x = rand(3, 3);\n");
  Function &F = *M->Functions[0];
  // x is unused but rand mutates the PRNG stream; the call must survive.
  bool FoundRand = false;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      FoundRand |= I.Op == Opcode::Builtin && I.StrVal == "rand";
  EXPECT_TRUE(FoundRand);
}

TEST(Passes, DCEKeepsCalls) {
  auto M = pipeline("function main\nx = f(2);\n\nfunction y = f(a)\n"
                    "disp(a);\ny = a;\n");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOps(F, Opcode::Call), 1u);
}

TEST(Passes, CSEDeduplicatesSizeQueries) {
  // Both uses of `end` expand to numel(a); CSE must merge them.
  auto M = pipeline("a = rand(1, 8);\nx = a(end) + a(end);\ndisp(x);\n");
  Function &F = *M->Functions[0];
  unsigned Numels = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Builtin && I.StrVal == "numel")
        ++Numels;
  EXPECT_EQ(Numels, 1u);
  // Likewise the two subsrefs collapse to one.
  EXPECT_EQ(countOps(F, Opcode::Subsref), 1u);
}

TEST(Passes, CSEDoesNotMergeRand) {
  auto M = pipeline("x = rand + rand;\ndisp(x);\n");
  Function &F = *M->Functions[0];
  unsigned Rands = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Builtin && I.StrVal == "rand")
        ++Rands;
  EXPECT_EQ(Rands, 2u);
}

TEST(Passes, PipelineShrinksTypicalProgram) {
  Diagnostics Diags;
  auto Prog = parseProgram(
      "n = 10;\ns = 0;\nfor i = 1:n\ns = s + i * i;\nend\ndisp(s);\n",
      Diags);
  auto M = lowerProgram(*Prog, Diags);
  Function &F = *M->Functions[0];
  buildSSA(F, Diags);
  unsigned Before = countInstrs(F);
  runCleanupPipeline(F);
  EXPECT_LT(countInstrs(F), Before);
  EXPECT_TRUE(verifyFunction(F, Diags)) << Diags.str();
}

TEST(Passes, PureBuiltinClassification) {
  EXPECT_TRUE(isPureBuiltin("size"));
  EXPECT_TRUE(isPureBuiltin("zeros"));
  EXPECT_TRUE(isPureBuiltin("sqrt"));
  EXPECT_FALSE(isPureBuiltin("rand"));
  EXPECT_FALSE(isPureBuiltin("disp"));
  EXPECT_FALSE(isPureBuiltin("fprintf"));
  EXPECT_FALSE(isPureBuiltin("error"));
  // Unknown names are conservatively impure: an undefined function must
  // fault at run time instead of being dead-code eliminated.
  EXPECT_FALSE(isPureBuiltin("magic_missing"));
}

TEST(Passes, DCEKeepsUnknownBuiltins) {
  auto M = pipeline("x = some_unknown_fn(3);\ny = 1;\ndisp(y);\n");
  Function &F = *M->Functions[0];
  bool Found = false;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      Found |= I.Op == Opcode::Builtin && I.StrVal == "some_unknown_fn";
  EXPECT_TRUE(Found);
}

} // namespace
